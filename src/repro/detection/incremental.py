"""Incremental detection: streaming stage operators over the delta log.

The batch :class:`~repro.detection.pipeline.DetectionPipeline` recomputes
every stage from scratch on each run. This module decomposes those
stages into :class:`IncrementalStage` operators — each with explicit,
serializable standing state and a per-stage watermark — and folds one
day's recorded :class:`~repro.store.changelog.DeltaEvent` batch into
that state via :class:`IncrementalDetectionEngine`.

The contract is *batch-identical daily updates*: after advancing through
batch day N, :meth:`IncrementalDetectionEngine.result` is bit-identical
(same :func:`~repro.runner.execution.result_fingerprint`) to a fresh
batch run over a zone database rebuilt through day N. Two properties
make this cheap to guarantee:

* the engine owns its **own** zone database, grown by replaying the
  delta stream through the exact store primitives that produced it —
  so per-day evaluation always sees the day-N store, bit for bit;
* every stage verdict for a nameserver is a pure function of store
  state reachable from that nameserver, so one conservative *dirty set*
  per day batch (derived below) bounds what must be re-evaluated.

Dirty-set derivation, per event kind:

* delegation add/remove on ``(domain, ns)`` — dirties ``ns`` (its
  first-seen day, referencing domains, repository spread and candidate
  verdict can change) and every nameserver that ever had a record on
  ``domain`` (their ``nameservers_removed_on`` joins run through it);
* glue add/remove on ``host`` — dirties ``host`` (resolvability);
* domain appear/expire on ``domain`` — dirties every known nameserver
  whose registered domain is ``domain`` (resolvability and collision
  checks read its presence);
* tld-cover on ``tld`` — dirties every known nameserver under ``tld``
  (coverage flips resolvability verdicts from unknown to assessable).

Shared evaluator logic (collision checks, pattern/match classification)
lives in :class:`StageContext`, which both the batch pipeline and the
engine consume — one code path, two schedules.
"""

from __future__ import annotations

import pickle
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.detection.candidates import CandidateNameserver, build_candidate_set
from repro.detection.idioms import (
    IdiomClass,
    IdiomClassifier,
    classify_match,
    known_classifiers,
)
from repro.detection.matching import MatchResult, OriginalNameserverMatcher
from repro.detection.pipeline import (
    MINE_MIN_SUPPORT,
    CoverageAnnotations,
    PipelineFunnel,
    PipelineResult,
    SacrificialNameserver,
)
from repro.detection.repository_check import RepositoryMap, SingleRepositoryFilter
from repro.detection.resolvability import ResolvabilityAnalyzer
from repro.detection.substrings import (
    SubstringCounter,
    _select_patterns,
    mine_substrings_cached,
)
from repro.detection.testns import TestNameserverFilter
from repro.obs import runtime as obs
from repro.store.changelog import (
    DELEGATION_ADD,
    DELEGATION_REMOVE,
    DOMAIN_APPEAR,
    DOMAIN_EXPIRE,
    GLUE_ADD,
    GLUE_REMOVE,
    TLD_COVER,
    DeltaEvent,
)
from repro.store.dataset import DatasetView, DeltaView
from repro.store.memory import MemoryDelegationStore
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase

if TYPE_CHECKING:
    from pathlib import Path

    from repro.store.dataset import DatasetView as _DatasetView  # noqa: F401

#: Format tag carried by serialized engine state.
ENGINE_STATE_FORMAT = "riskybiz-engine-state/1"

#: Watermark key for the engine as a whole (stages use their own names).
ENGINE_WATERMARK = "engine"

_EMPTY: frozenset[str] = frozenset()


def commit_watermark(state: dict[str, Any], stage: str, day: int) -> None:
    """Commit a stage (or engine) watermark — the *only* sanctioned write.

    Watermarks are the durability contract of the incremental plane: a
    consumer that has committed day N promises its standing state folds
    every batch through N. They never move backwards, and every update
    must come through here (lint rule ``DET013`` flags state mutations
    that bypass this path).
    """
    current = state["watermarks"].get(stage)
    if current is not None and day < current:
        raise ValueError(
            f"watermark for {stage!r} cannot move backwards: {day} < {current}"
        )
    state["watermarks"][stage] = day


@dataclass(frozen=True)
class StageContext:
    """Everything a stage evaluator needs, batch or incremental.

    The classification helpers used to live on ``DetectionPipeline``;
    they moved here so the incremental engine evaluates dirty
    nameservers through exactly the code the batch stages run.
    """

    zonedb: ZoneDatabase
    whois: WhoisArchive
    psl: PublicSuffixList
    classifiers: list[IdiomClassifier]
    test_filter: TestNameserverFilter
    repo_filter: SingleRepositoryFilter
    matcher: OriginalNameserverMatcher
    analyzer: ResolvabilityAnalyzer
    mine_patterns: bool = True

    @classmethod
    def build(
        cls,
        zonedb: ZoneDatabase,
        whois: WhoisArchive,
        *,
        psl: PublicSuffixList | None = None,
        classifiers: list[IdiomClassifier] | None = None,
        test_filter: TestNameserverFilter | None = None,
        repo_map: RepositoryMap | None = None,
        mine_patterns: bool = True,
    ) -> "StageContext":
        psl = psl or default_psl()
        return cls(
            zonedb=zonedb,
            whois=whois,
            psl=psl,
            classifiers=classifiers or known_classifiers(),
            test_filter=test_filter or TestNameserverFilter(),
            repo_filter=SingleRepositoryFilter(zonedb, repo_map or RepositoryMap()),
            matcher=OriginalNameserverMatcher(zonedb, whois, psl=psl),
            analyzer=ResolvabilityAnalyzer(zonedb, psl=psl),
            mine_patterns=mine_patterns,
        )

    def was_registered_before(self, registered_domain: str, day: int) -> bool:
        """Collision check: did the domain exist before the rename?"""
        record = self.whois.current(registered_domain, day)
        if record is not None and record.created < day:
            return True
        return self.zonedb.domain_present(registered_domain, max(0, day - 1))

    def classify_pattern(
        self, name: str, classifier: IdiomClassifier
    ) -> SacrificialNameserver:
        """A sacrificial-nameserver entry for one pattern classifier hit."""
        first_seen = self.zonedb.first_seen(name) or 0
        registered = self.psl.registered_domain(name)
        collision = False
        if classifier.klass is IdiomClass.RANDOM and registered is not None:
            collision = self.was_registered_before(registered, first_seen)
        return SacrificialNameserver(
            name=name,
            created_day=first_seen,
            idiom_id=classifier.idiom_id,
            hijackable=classifier.hijackable,
            registrar=classifier.registrar_hint,
            registered_domain=registered,
            source="pattern",
            collision=collision,
        )

    def classify_match(self, match: MatchResult) -> SacrificialNameserver | None:
        """A sacrificial-nameserver entry for one history match, if idiomatic."""
        idiom_id = classify_match(match)
        if idiom_id is None:
            return None
        registered = self.psl.registered_domain(match.candidate)
        collision = False
        if registered is not None:
            collision = self.was_registered_before(registered, match.first_seen)
        return SacrificialNameserver(
            name=match.candidate,
            created_day=match.first_seen,
            idiom_id=idiom_id,
            hijackable=True,
            registrar=match.registrar,
            registered_domain=registered,
            source="match",
            original_ns=match.original_ns,
            original_domain=match.original_domain,
            collision=collision,
        )


@dataclass
class AdvanceNotes:
    """Per-batch scratchpad threaded through the stage operators.

    ``dirty`` is the conservative re-evaluation set for the batch;
    the candidates operator records which verdicts appeared/disappeared
    so downstream operators (miner, test filter) adjust incrementally
    instead of re-deriving the change themselves.
    """

    batch_day: int
    events: tuple[DeltaEvent, ...]
    dirty: tuple[str, ...]
    candidates_added: list[str] = field(default_factory=list)
    candidates_removed: list[str] = field(default_factory=list)


class IncrementalStage:
    """One detection stage, runnable batch-wise or delta-wise.

    ``run_batch`` is the stage body the batch pipeline executes (the old
    ``_stage_*`` methods); ``advance`` folds one day batch into the
    stage's standing keys in the engine state. Each stage carries its
    own watermark in ``state["watermarks"]``, committed through
    :func:`commit_watermark` after a successful advance.
    """

    name = ""

    def init_state(self, state: dict[str, Any]) -> None:
        """Install this stage's standing keys into a fresh engine state."""

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        raise NotImplementedError

    def advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        watermark = state["watermarks"].get(self.name)
        if watermark is not None and notes.batch_day <= watermark:
            raise ValueError(
                f"stage {self.name!r} already advanced through "
                f"{watermark}; got batch day {notes.batch_day}"
            )
        self._advance(context, state, notes)
        commit_watermark(state, self.name, notes.batch_day)

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        raise NotImplementedError


class CandidatesStage(IncrementalStage):
    """§3.2.1: unresolvable-at-first-reference candidate verdicts."""

    name = "candidates"

    def init_state(self, state: dict[str, Any]) -> None:
        state["candidates"] = {}

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        funnel = state["funnel"]
        funnel.total_nameservers = view.nameserver_count()
        candidates = build_candidate_set(
            view.zonedb, context.analyzer, nameservers=view.nameservers()
        )
        funnel.candidates = len(candidates)
        state["candidates"] = candidates

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        verdicts: dict[str, CandidateNameserver] = state["candidates"]
        for ns in notes.dirty:
            fresh = build_candidate_set(
                context.zonedb, context.analyzer, nameservers=[ns]
            )
            new = fresh[0] if fresh else None
            old = verdicts.get(ns)
            if new is None:
                if old is not None:
                    del verdicts[ns]
                    notes.candidates_removed.append(ns)
            else:
                verdicts[ns] = new
                if old is None:
                    notes.candidates_added.append(ns)


class MineStage(IncrementalStage):
    """§3.2.2: frequent-substring mining over the candidate names."""

    name = "mine"

    def init_state(self, state: dict[str, Any]) -> None:
        state["mine_counter"] = SubstringCounter()

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        mined: list[Any] = []
        if context.mine_patterns:
            mined = mine_substrings_cached(
                (c.name for c in state["candidates"]),
                min_support=MINE_MIN_SUPPORT,
            )
        state["mined"] = mined

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        if not context.mine_patterns:
            return
        counter: SubstringCounter = state["mine_counter"]
        for name in notes.candidates_removed:
            counter.discard(name)
        for name in notes.candidates_added:
            counter.add(name)


class TestFilterStage(IncrementalStage):
    """§3.2.2: drop registry test nameservers from the candidate set."""

    name = "test-filter"

    def init_state(self, state: dict[str, Any]) -> None:
        state["test_removed"] = set()

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        candidates, test_removed = context.test_filter.partition(
            state["candidates"]
        )
        state["funnel"].test_removed = len(test_removed)
        state["candidates"] = candidates

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        removed: set[str] = state["test_removed"]
        for name in notes.candidates_removed:
            removed.discard(name)
        for name in notes.candidates_added:
            if context.test_filter.is_test_nameserver(name):
                removed.add(name)


class PatternSweepStage(IncrementalStage):
    """§3.2.2: confirmed-pattern sweep over the nameserver population."""

    name = "pattern-sweep"

    def init_state(self, state: dict[str, Any]) -> None:
        state["pattern"] = {}

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        sacrificial: dict[str, SacrificialNameserver] = {}
        for name in view.nameservers():
            if context.test_filter.is_test_nameserver(name):
                continue
            for classifier in context.classifiers:
                if classifier.matches_name(name):
                    sacrificial[name] = context.classify_pattern(name, classifier)
                    break
        state["funnel"].pattern_classified = len(sacrificial)
        state["sacrificial"] = sacrificial

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        entries: dict[str, SacrificialNameserver] = state["pattern"]
        for ns in notes.dirty:
            if (
                context.zonedb.first_seen(ns) is None
                or context.test_filter.is_test_nameserver(ns)
            ):
                entries.pop(ns, None)
                continue
            entry: SacrificialNameserver | None = None
            for classifier in context.classifiers:
                if classifier.matches_name(ns):
                    entry = context.classify_pattern(ns, classifier)
                    break
            if entry is None:
                entries.pop(ns, None)
            else:
                entries[ns] = entry


class SingleRepoStage(IncrementalStage):
    """§3.2.3: the single-repository property filter."""

    name = "single-repo"

    def init_state(self, state: dict[str, Any]) -> None:
        state["single_repo"] = set()

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        remaining = [
            c for c in state["candidates"] if c.name not in state["sacrificial"]
        ]
        remaining, eliminated = context.repo_filter.partition(remaining)
        state["funnel"].single_repo_removed = len(eliminated)
        state["remaining"] = remaining

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        # The verdict is a pure predicate of (candidate, zonedb), so it
        # is evaluated for every dirty candidate regardless of pattern
        # membership; the result fold applies the batch ordering rules.
        violations: set[str] = state["single_repo"]
        for ns in notes.dirty:
            candidate = state["candidates"].get(ns)
            if candidate is not None and context.repo_filter.violates(candidate):
                violations.add(ns)
            else:
                violations.discard(ns)


class MatchStage(IncrementalStage):
    """§3.2.3: original-nameserver history matching + classification."""

    name = "match"

    def init_state(self, state: dict[str, Any]) -> None:
        state["match_results"] = {}
        state["match_entries"] = {}

    def run_batch(
        self, context: StageContext, view: DatasetView, state: dict[str, Any]
    ) -> None:
        funnel = state["funnel"]
        sacrificial = state["sacrificial"]
        matches, _unmatched = context.matcher.match_all(state["remaining"])
        funnel.history_matched = len(matches)
        for match in matches:
            entry = context.classify_match(match)
            if entry is not None and entry.name not in sacrificial:
                sacrificial[entry.name] = entry
        funnel.match_classified = len(sacrificial) - funnel.pattern_classified
        state["matches"] = matches

    def _advance(
        self, context: StageContext, state: dict[str, Any], notes: AdvanceNotes
    ) -> None:
        results: dict[str, MatchResult] = state["match_results"]
        entries: dict[str, SacrificialNameserver] = state["match_entries"]
        for ns in notes.dirty:
            candidate = state["candidates"].get(ns)
            if candidate is None or ns in state["test_removed"]:
                results.pop(ns, None)
                entries.pop(ns, None)
                continue
            match = context.matcher.match(candidate)
            if match is None:
                results.pop(ns, None)
                entries.pop(ns, None)
                continue
            results[ns] = match
            entry = context.classify_match(match)
            if entry is None:
                entries.pop(ns, None)
            else:
                entries[ns] = entry


def build_stages() -> tuple[IncrementalStage, ...]:
    """The six stage operators, in pipeline execution order."""
    return (
        CandidatesStage(),
        MineStage(),
        TestFilterStage(),
        PatternSweepStage(),
        SingleRepoStage(),
        MatchStage(),
    )


def new_engine_state() -> dict[str, Any]:
    """A fresh engine state with every stage's standing keys installed."""
    state: dict[str, Any] = {"watermarks": {}}
    for stage in build_stages():
        stage.init_state(state)
    return state


class IncrementalDetectionEngine:
    """Folds per-day delta batches into standing detection state.

    The engine owns a private zone database (memory or SQLite backend)
    grown by replaying the consumed delta stream, plus the stage
    operators' standing state. :meth:`advance` folds one day batch;
    :meth:`advance_from` drains everything past the engine watermark
    from a source dataset; :meth:`result` reconstructs the exact
    :class:`~repro.detection.pipeline.PipelineResult` a batch run over
    the same history would produce.

    ``covered_tlds`` must name any TLDs the source database was
    *constructed* covering (coverage declared after construction flows
    through ``tld-cover`` deltas and needs no special handling).
    """

    #: Default consumer name for dataset-side watermark commits.
    CONSUMER = "incremental-engine"

    def __init__(
        self,
        whois: WhoisArchive,
        *,
        backend: str = "memory",
        store_path: "str | Path | None" = None,
        covered_tlds: Iterable[str] = (),
        psl: PublicSuffixList | None = None,
        classifiers: list[IdiomClassifier] | None = None,
        test_filter: TestNameserverFilter | None = None,
        repo_map: RepositoryMap | None = None,
        mine_patterns: bool = True,
    ) -> None:
        if backend == "memory":
            store = MemoryDelegationStore()
        elif backend == "sqlite":
            if store_path is None:
                raise ValueError("sqlite backend needs store_path")
            from repro.store.sqlite import SqliteDelegationStore

            store = SqliteDelegationStore(store_path)
        else:
            raise ValueError(f"unknown engine backend {backend!r}")
        self.backend = backend
        self.zonedb = ZoneDatabase(covered_tlds, store=store)
        self.context = StageContext.build(
            self.zonedb,
            whois,
            psl=psl,
            classifiers=classifiers,
            test_filter=test_filter,
            repo_map=repo_map,
            mine_patterns=mine_patterns,
        )
        self.stages = build_stages()
        self.state = new_engine_state()
        # Conservative dirty-set indices (monotone: entries are never
        # removed; a stale member only widens re-evaluation, never
        # narrows it).
        self._domain_ns: dict[str, set[str]] = {}
        self._registered_ns: dict[str, set[str]] = {}
        self._tld_ns: dict[str, set[str]] = {}
        self._known_ns: set[str] = set()
        #: (counter revision, selected patterns) fold memo.
        self._mine_memo: tuple[int, list[Any]] | None = None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def watermark(self) -> int | None:
        """The last batch day fully folded into the standing state."""
        return self.state["watermarks"].get(ENGINE_WATERMARK)

    def _note_ns(self, ns: str) -> None:
        if ns in self._known_ns:
            return
        self._known_ns.add(ns)
        registered = self.context.psl.registered_domain(ns)
        if registered is not None:
            self._registered_ns.setdefault(registered, set()).add(ns)
        self._tld_ns.setdefault(Name(ns).tld, set()).add(ns)

    def _replay(self, event: DeltaEvent) -> None:
        """Apply one delta to the private store and the dirty indices."""
        self.zonedb.apply_delta(event)
        if event.kind in (DELEGATION_ADD, DELEGATION_REMOVE):
            assert event.ns is not None
            self._note_ns(event.ns)
            self._domain_ns.setdefault(event.name, set()).add(event.ns)

    def _dirty_from(self, events: Iterable[DeltaEvent]) -> set[str]:
        dirty: set[str] = set()
        dirty_domains: set[str] = set()
        for event in events:
            if event.kind in (DELEGATION_ADD, DELEGATION_REMOVE):
                assert event.ns is not None
                dirty.add(event.ns)
                dirty_domains.add(event.name)
            elif event.kind in (GLUE_ADD, GLUE_REMOVE):
                dirty.add(event.name)
            elif event.kind in (DOMAIN_APPEAR, DOMAIN_EXPIRE):
                dirty |= self._registered_ns.get(event.name, _EMPTY)
            elif event.kind == TLD_COVER:
                dirty |= self._tld_ns.get(event.name, _EMPTY)
        for domain in sorted(dirty_domains):
            dirty |= self._domain_ns.get(domain, _EMPTY)
        return dirty

    # -- advancing -----------------------------------------------------------

    def advance(self, batch_day: int, events: Iterable[DeltaEvent]) -> int:
        """Fold one day's delta batch; returns the number of events applied.

        Batches must arrive in strictly increasing batch-day order (the
        order :meth:`~repro.store.dataset.DeltaView.batches` yields).
        """
        events = tuple(events)
        watermark = self.watermark
        if watermark is not None and batch_day <= watermark:
            raise ValueError(
                f"engine already advanced through {watermark}; "
                f"got batch day {batch_day}"
            )
        with obs.span("engine.advance", day=batch_day) as span:
            with obs.span("delta.apply", day=batch_day, count=len(events)):
                for event in events:
                    self._replay(event)
            dirty = self._dirty_from(events)
            notes = AdvanceNotes(
                batch_day=batch_day,
                events=events,
                dirty=tuple(sorted(dirty)),
            )
            for stage in self.stages:
                stage.advance(self.context, self.state, notes)
            commit_watermark(self.state, ENGINE_WATERMARK, batch_day)
            span.set(deltas=len(events), dirty=len(dirty))
        obs.counter("detect.incremental.days").inc()
        obs.counter("detect.incremental.deltas_applied").inc(len(events))
        return len(events)

    def advance_from(
        self,
        source: "ZoneDatabase | DatasetView",
        *,
        until: int | None = None,
        consumer: str | None = None,
    ) -> int:
        """Drain every batch past the engine watermark from ``source``.

        Returns the number of day batches folded. With ``consumer`` set,
        the source store's per-consumer watermark is committed after
        each fully-folded day, so a later run (or another process)
        resumes exactly where this one durably stopped.
        """
        zonedb = source.zonedb if isinstance(source, DatasetView) else source
        view = DeltaView(zonedb, since=self.watermark, until=until)
        days = 0
        for batch_day, events in view.batches():
            self.advance(batch_day, events)
            if consumer is not None:
                zonedb.commit_watermark(consumer, batch_day)
            days += 1
        return days

    # -- the fold ------------------------------------------------------------

    def result(self) -> PipelineResult:
        """The batch-identical :class:`PipelineResult` for the current state.

        Reconstructs every ordering the batch pipeline produces:
        candidates in (first_seen, name) order, matches in surviving-
        candidate order, the final set sorted by (created_day, name).
        Coverage annotations are empty — the engine replays deltas, not
        snapshots, so there are no ingest reports to summarize (result
        fingerprints exclude coverage for exactly this reason).
        """
        state = self.state
        funnel = PipelineFunnel()
        funnel.total_nameservers = self.zonedb.nameserver_count()
        everyone = sorted(
            state["candidates"].values(), key=lambda c: (c.first_seen, c.name)
        )
        funnel.candidates = len(everyone)
        mined: list[Any] = []
        if self.context.mine_patterns:
            counter: SubstringCounter = state["mine_counter"]
            # Selection is a pure function of the counts; memoize on the
            # counter revision so days without candidate churn (the
            # common case) skip the full re-selection. The memo is
            # per-instance scratch, deliberately left out of
            # dump_engine_state.
            if self._mine_memo is None or self._mine_memo[0] != counter.revision:
                self._mine_memo = (
                    counter.revision,
                    _select_patterns(
                        counter.counts,
                        min_support=MINE_MIN_SUPPORT,
                        top=50,
                        containment_slack=0.9,
                    ),
                )
            mined = list(self._mine_memo[1])
        kept = [c for c in everyone if c.name not in state["test_removed"]]
        funnel.test_removed = len(everyone) - len(kept)
        pattern: dict[str, SacrificialNameserver] = state["pattern"]
        funnel.pattern_classified = len(pattern)
        sacrificial: dict[str, SacrificialNameserver] = dict(pattern)
        remaining = [c for c in kept if c.name not in pattern]
        survivors = [c for c in remaining if c.name not in state["single_repo"]]
        funnel.single_repo_removed = len(remaining) - len(survivors)
        matches = [
            state["match_results"][c.name]
            for c in survivors
            if c.name in state["match_results"]
        ]
        funnel.history_matched = len(matches)
        for match in matches:
            entry = state["match_entries"].get(match.candidate)
            if entry is not None and entry.name not in sacrificial:
                sacrificial[entry.name] = entry
        funnel.match_classified = len(sacrificial) - funnel.pattern_classified
        final = sorted(
            sacrificial.values(), key=lambda s: (s.created_day, s.name)
        )
        funnel.sacrificial_total = len(final)
        return PipelineResult(
            sacrificial=final,
            funnel=funnel,
            mined_patterns=mined,
            matches=matches,
            candidates=kept,
            coverage=CoverageAnnotations(),
        )

    # -- serialization / resume ----------------------------------------------

    def restore(
        self, source: "ZoneDatabase | DatasetView", data: bytes
    ) -> int | None:
        """Adopt a serialized state, rebuilding the private store by replay.

        Only valid on a fresh engine. The source's recorded deltas up to
        the serialized watermark are replayed into the private store
        (replay is deterministic, so the rebuilt store is bit-identical
        to the one the state was dumped against); the standing verdicts
        are installed as-is. Returns the restored watermark.
        """
        if self.watermark is not None:
            raise ValueError("restore requires a fresh engine")
        state = load_engine_state(data)
        watermark = state["watermarks"].get(ENGINE_WATERMARK)
        if watermark is not None:
            zonedb = (
                source.zonedb if isinstance(source, DatasetView) else source
            )
            with obs.span("delta.apply", day=watermark, restore=True):
                for batch_day, event in zonedb.deltas_since(None):
                    if batch_day > watermark:
                        break
                    self._replay(event)
        self.state = state
        return watermark


def dump_engine_state(engine: IncrementalDetectionEngine) -> bytes:
    """Serialize an engine's standing state deterministically.

    Every unordered container is normalized (sets to sorted lists,
    dicts to key-sorted) so equal states produce identical bytes
    regardless of fold order or process hash seed — engine checkpoints
    are content-addressed by these bytes, exactly like the batch
    pipeline's stage checkpoints.
    """
    state = engine.state
    counter: SubstringCounter = state["mine_counter"]
    normalized = {
        "format": ENGINE_STATE_FORMAT,
        "watermarks": dict(sorted(state["watermarks"].items())),
        "candidates": {
            ns: state["candidates"][ns] for ns in sorted(state["candidates"])
        },
        "mine_lengths": [counter.min_length, counter.max_length],
        "mine_names": sorted(counter.names.items()),
        "mine_counts": sorted(counter.counts.items()),
        "test_removed": sorted(state["test_removed"]),
        "pattern": {ns: state["pattern"][ns] for ns in sorted(state["pattern"])},
        "single_repo": sorted(state["single_repo"]),
        "match_results": {
            ns: state["match_results"][ns]
            for ns in sorted(state["match_results"])
        },
        "match_entries": {
            ns: state["match_entries"][ns]
            for ns in sorted(state["match_entries"])
        },
    }
    return pickle.dumps(normalized)


def load_engine_state(data: bytes) -> dict[str, Any]:
    """Inverse of :func:`dump_engine_state`."""
    payload: dict[str, Any] = pickle.loads(data)
    if payload.get("format") != ENGINE_STATE_FORMAT:
        raise ValueError(
            f"not an engine state (format {payload.get('format')!r})"
        )
    min_length, max_length = payload["mine_lengths"]
    counter = SubstringCounter(min_length=min_length, max_length=max_length)
    counter.names = Counter(dict(payload["mine_names"]))
    counter.counts = Counter(dict(payload["mine_counts"]))
    return {
        "watermarks": dict(payload["watermarks"]),
        "candidates": dict(payload["candidates"]),
        "mine_counter": counter,
        "test_removed": set(payload["test_removed"]),
        "pattern": dict(payload["pattern"]),
        "single_repo": set(payload["single_repo"]),
        "match_results": dict(payload["match_results"]),
        "match_entries": dict(payload["match_entries"]),
    }
