"""The single-repository property filter (§3.2.3).

Host-object renaming is scoped to one EPP repository, so the domains
delegated to a true sacrificial nameserver cannot span repositories
operated by different registries. Which registry operates which TLD is
public knowledge (IANA registry agreements), encoded here as a
:class:`RepositoryMap`.

The filter eliminates candidates that violate the property — in the
paper, 11,403 candidates — before the expensive history-matching step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dnscore.names import Name
from repro.detection.candidates import CandidateNameserver
from repro.zonedb.database import ZoneDatabase

#: TLD → repository operator, mirroring the simulated world's topology
#: (and, structurally, the real one: Verisign runs .com/.net and the
#: back-ends for .edu/.gov; .biz is operated elsewhere).
DEFAULT_TLD_REPOSITORIES: dict[str, str] = {
    "com": "sim-verisign",
    "net": "sim-verisign",
    "edu": "sim-verisign",
    "gov": "sim-verisign",
    "org": "sim-afilias",
    "info": "sim-afilias",
    "biz": "sim-neustar",
    "us": "sim-neustar",
}


@dataclass(frozen=True)
class RepositoryMap:
    """Public TLD-to-registry-operator knowledge."""

    tld_to_operator: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_TLD_REPOSITORIES)
    )

    def operator_of(self, name: str) -> str | None:
        """The repository operator for a name's TLD, if known."""
        return self.tld_to_operator.get(Name(name).tld)

    def repositories_of(self, names: Iterable[str]) -> set[str]:
        """Distinct known repository operators across names' TLDs."""
        operators = set()
        for name in names:
            operator = self.operator_of(name)
            if operator is not None:
                operators.add(operator)
        return operators


@dataclass
class SingleRepositoryFilter:
    """Eliminates candidates violating the single-repository property."""

    zonedb: ZoneDatabase
    repo_map: RepositoryMap = field(default_factory=RepositoryMap)

    def violates(self, candidate: CandidateNameserver) -> bool:
        """True if the candidate cannot be a sacrificial nameserver.

        Two violations (per the paper): the delegated domains span more
        than one known repository, or the candidate's own TLD equals the
        TLD of every delegated domain (a rename must move the host into a
        namespace the repository treats as external, and within one
        repository the observed idioms always change the TLD).
        """
        domains = self.zonedb.domains_of_ns(candidate.name)
        if not domains:
            return False
        if len(self.repo_map.repositories_of(domains)) > 1:
            return True
        candidate_tld = Name(candidate.name).tld
        domain_tlds = {Name(domain).tld for domain in domains}
        if domain_tlds == {candidate_tld}:
            # Same-TLD "renames" are indistinguishable from ordinary
            # misconfiguration *unless* the name sits under a registered
            # sink domain, which the idiom classifiers handle separately.
            return True
        return False

    def partition(
        self, candidates: Iterable[CandidateNameserver]
    ) -> tuple[list[CandidateNameserver], list[CandidateNameserver]]:
        """Split candidates into (kept, eliminated)."""
        kept: list[CandidateNameserver] = []
        eliminated: list[CandidateNameserver] = []
        for candidate in candidates:
            if self.violates(candidate):
                eliminated.append(candidate)
            else:
                kept.append(candidate)
        return kept, eliminated
