"""The paper's detection methodology (§3).

Identifies sacrificial nameservers from longitudinal zone data alone:

1. **Resolvability analysis** — derive, per nameserver, the date ranges
   with a valid static resolution path (glue or a delegated registered
   domain) — :mod:`repro.detection.resolvability`.
2. **Candidate set** — nameservers unresolvable when first referenced by
   any domain — :mod:`repro.detection.candidates`.
3. **Pattern mining** — frequent-substring discovery of renaming idioms —
   :mod:`repro.detection.substrings`.
4. **Test-nameserver removal** — the EMT- registry-testing pattern —
   :mod:`repro.detection.testns`.
5. **Single-repository filter** — :mod:`repro.detection.repository_check`.
6. **Original-nameserver matching** — day-before history join plus
   registered-domain substring test — :mod:`repro.detection.matching`.
7. **Idiom classification and registrar attribution** —
   :mod:`repro.detection.idioms`, :mod:`repro.detection.pipeline`.
8. **Incremental engine** — the same stages as watermarked streaming
   operators over the recorded delta log, with batch-identical results —
   :mod:`repro.detection.incremental`.

The pipeline consumes only the observable data sets (zone database and
WHOIS archive) — never the simulator's ground truth.
"""

from repro.detection.candidates import CandidateNameserver, build_candidate_set
from repro.detection.idioms import IdiomClass, IdiomClassifier, known_classifiers
from repro.detection.incremental import (
    IncrementalDetectionEngine,
    IncrementalStage,
    StageContext,
    build_stages,
    dump_engine_state,
    load_engine_state,
)
from repro.detection.matching import MatchResult, OriginalNameserverMatcher
from repro.detection.pipeline import (
    CoverageAnnotations,
    DetectionPipeline,
    PipelineResult,
    SacrificialNameserver,
)
from repro.detection.repository_check import RepositoryMap, SingleRepositoryFilter
from repro.detection.resolvability import ResolvabilityAnalyzer
from repro.detection.substrings import (
    SubstringCounter,
    SubstringPattern,
    mine_substrings,
    mine_substrings_cached,
)
from repro.detection.testns import TestNameserverFilter

__all__ = [
    "CandidateNameserver",
    "build_candidate_set",
    "IdiomClass",
    "IdiomClassifier",
    "known_classifiers",
    "IncrementalDetectionEngine",
    "IncrementalStage",
    "StageContext",
    "build_stages",
    "dump_engine_state",
    "load_engine_state",
    "MatchResult",
    "OriginalNameserverMatcher",
    "CoverageAnnotations",
    "DetectionPipeline",
    "PipelineResult",
    "SacrificialNameserver",
    "RepositoryMap",
    "SingleRepositoryFilter",
    "ResolvabilityAnalyzer",
    "SubstringCounter",
    "SubstringPattern",
    "mine_substrings",
    "mine_substrings_cached",
    "TestNameserverFilter",
]
