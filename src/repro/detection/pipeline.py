"""The end-to-end detection pipeline (§3.2).

Runs the full methodology against a zone database and WHOIS archive:

1. candidate-set construction (unresolvable at first reference);
2. substring pattern mining (recorded for inspection — the "discovery"
   half of §3.2.2);
3. test-nameserver removal;
4. pattern-classifier sweep over the **entire** nameserver population
   (the paper's final sets come from matching confirmed idioms against
   the whole longitudinal data set, which is how resolvable accidents
   like PLEASEDROPTHISHOST collisions are still counted);
5. single-repository filtering of the remaining candidates;
6. original-nameserver history matching with WHOIS registrar
   attribution.

The output is the final classified set of sacrificial nameservers plus a
stage-by-stage funnel (the §3 numbers: 20M → 312,328 → −28,614 test →
−11,403 single-repo → 202,624 sacrificial).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.dnscore.psl import PublicSuffixList
from repro.detection.candidates import CandidateNameserver
from repro.detection.idioms import IdiomClassifier
from repro.detection.matching import MatchResult
from repro.detection.repository_check import RepositoryMap
from repro.detection.substrings import SubstringPattern, mine_substrings_cached
from repro.detection.testns import TestNameserverFilter
from repro.obs import profiling
from repro.obs import runtime as obs
from repro.store.atomic import atomic_write_bytes
from repro.store.dataset import DatasetView, ShardSpec
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase

#: Minimum substring support for the §3.2.2 mining stage.
MINE_MIN_SUPPORT = 4

#: Funnel fields each stage populates — mirrored into stage spans and
#: the obs funnel counters when the stage completes.
_STAGE_FUNNEL_FIELDS = {
    "candidates": ("total_nameservers", "candidates"),
    "mine": (),
    "test-filter": ("test_removed",),
    "pattern-sweep": ("pattern_classified",),
    "single-repo": ("single_repo_removed",),
    "match": ("history_matched", "match_classified"),
}


def _run_stage_observed(
    name: str,
    stage: "Callable[[DatasetView, dict[str, Any]], None]",
    view: "DatasetView",
    state: dict[str, Any],
) -> None:
    """Run one stage under a span, a duration histogram, and profiling.

    The span's content attributes are the funnel counts the stage
    produced — pure functions of the run's inputs, so a re-run after a
    crash emits an identical span-end; the duration lands only in the
    histogram and the span's telemetry field.
    """
    with obs.span(name) as span, obs.timed(
        f"pipeline.stage.{name}.duration_s"
    ), profiling.profile_stage(name):
        stage(view, state)
        counts = {
            field_name: getattr(state["funnel"], field_name)
            for field_name in _STAGE_FUNNEL_FIELDS.get(name, ())
        }
        span.set(**counts)
    obs.counter(f"pipeline.stage_runs.{name}").inc()
    for field_name, value in counts.items():
        obs.counter(f"pipeline.funnel.{field_name}").inc(value)


def dump_pipeline_state(state: dict[str, Any]) -> bytes:
    """Serialize a checkpointable stage/shard state deterministically.

    The ``done`` set is normalized to a sorted list before pickling so
    equal states produce identical bytes regardless of process hash
    seed — checkpoint files are content-addressed by these bytes.
    """
    normalized = dict(state)
    normalized["done"] = sorted(state.get("done", ()))
    return pickle.dumps(normalized)


def load_pipeline_state(data: bytes) -> dict[str, Any]:
    """Inverse of :func:`dump_pipeline_state`."""
    state: dict[str, Any] = pickle.loads(data)
    state["done"] = set(state.get("done", ()))
    return state


@dataclass(frozen=True, slots=True)
class SacrificialNameserver:
    """One detected sacrificial nameserver."""

    name: str
    created_day: int
    idiom_id: str
    hijackable: bool
    registrar: str | None
    registered_domain: str | None
    source: str  # "pattern" or "match"
    original_ns: str | None = None
    original_domain: str | None = None
    collision: bool = False  # name landed on an already-registered domain


@dataclass
class PipelineFunnel:
    """Stage-by-stage counts (the paper's §3 numbers, at sim scale)."""

    total_nameservers: int = 0
    candidates: int = 0
    test_removed: int = 0
    pattern_classified: int = 0
    single_repo_removed: int = 0
    history_matched: int = 0
    match_classified: int = 0
    sacrificial_total: int = 0

    def rows(self) -> list[tuple[str, int]]:
        """Ordered (label, count) pairs for reporting."""
        return [
            ("nameservers in zone data", self.total_nameservers),
            ("unresolvable at first reference (candidates)", self.candidates),
            ("removed as registry test nameservers", self.test_removed),
            ("classified by confirmed patterns", self.pattern_classified),
            ("eliminated by single-repository property", self.single_repo_removed),
            ("matched to original nameserver", self.history_matched),
            ("classified from history match", self.match_classified),
            ("final sacrificial nameservers", self.sacrificial_total),
        ]


@dataclass(frozen=True)
class CoverageAnnotations:
    """How degraded the pipeline's input data was.

    Summarized from the zone database's ingest reports. Pristine input
    — or change-level ingestion, which produces no reports — yields
    full confidence. Attached to every :class:`PipelineResult` so
    downstream consumers can qualify the §3 numbers.
    """

    snapshots_ingested: int = 0
    snapshots_rejected: int = 0
    duplicate_snapshots: int = 0
    records_total: int = 0
    corrupt_records: int = 0
    gaps_bridged: int = 0
    closed_after_gap: int = 0

    @property
    def degraded(self) -> bool:
        """True if the input showed any sign of degradation."""
        return bool(
            self.snapshots_rejected
            or self.duplicate_snapshots
            or self.corrupt_records
            or self.gaps_bridged
            or self.closed_after_gap
        )

    @property
    def confidence(self) -> float:
        """Heuristic confidence in the output, in [0, 1].

        Penalized by the fraction of snapshots rejected outright (data
        definitely lost) and of records that arrived corrupted
        (individual pairs possibly missed). Bridged gaps are repairs,
        not losses, and carry no penalty; duplicates are idempotent.
        """
        score = 1.0
        total_snapshots = self.snapshots_ingested + self.snapshots_rejected
        if total_snapshots:
            score -= self.snapshots_rejected / total_snapshots
        if self.records_total:
            score -= self.corrupt_records / self.records_total
        return max(0.0, score)

    @classmethod
    def from_reports(cls, reports) -> "CoverageAnnotations":
        """Fold a list of :class:`~repro.zonedb.database.IngestReport`."""
        return cls(
            snapshots_ingested=sum(1 for r in reports if r.ingested),
            snapshots_rejected=sum(1 for r in reports if not r.ingested),
            duplicate_snapshots=sum(1 for r in reports if r.duplicate),
            records_total=sum(r.delegations for r in reports if r.ingested),
            corrupt_records=sum(r.corrupt_records for r in reports),
            gaps_bridged=sum(r.gaps_bridged for r in reports),
            closed_after_gap=sum(r.closed_after_gap for r in reports),
        )


@dataclass
class PipelineResult:
    """Everything the pipeline produces."""

    sacrificial: list[SacrificialNameserver]
    funnel: PipelineFunnel
    mined_patterns: list[SubstringPattern]
    matches: list[MatchResult]
    candidates: list[CandidateNameserver] = field(repr=False, default_factory=list)
    #: Input-quality annotations (pristine input ⇒ full confidence).
    coverage: CoverageAnnotations = field(default_factory=CoverageAnnotations)

    def by_name(self) -> dict[str, SacrificialNameserver]:
        """Index the final set by nameserver name."""
        return {entry.name: entry for entry in self.sacrificial}

    def hijackable(self) -> list[SacrificialNameserver]:
        """The hijackable subset (random-name idioms, no collision)."""
        return [s for s in self.sacrificial if s.hijackable and not s.collision]


class DetectionPipeline:
    """Configurable end-to-end runner for the §3 methodology.

    With ``shards > 1`` the per-nameserver stages run once per
    deterministic :class:`~repro.store.dataset.ShardSpec` (assignment by
    ``stable_hash``), each over its own :class:`DatasetView`, and a merge
    step reassembles a :class:`PipelineResult` bit-identical to the
    unsharded run. Because candidate names *are* nameserver names, every
    stage partitions cleanly along the shard boundary; only substring
    mining needs the merged candidate set and runs after the merge.
    """

    def __init__(
        self,
        zonedb: ZoneDatabase,
        whois: WhoisArchive,
        *,
        psl: PublicSuffixList | None = None,
        classifiers: list[IdiomClassifier] | None = None,
        test_filter: TestNameserverFilter | None = None,
        repo_map: RepositoryMap | None = None,
        mine_patterns: bool = True,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        # Imported here, not at module top: the incremental module builds
        # on this module's result types, so the dependency runs one way
        # at import time and closes into a pair only at construction.
        from repro.detection.incremental import StageContext, build_stages

        self.zonedb = zonedb
        self.whois = whois
        self.context = StageContext.build(
            zonedb,
            whois,
            psl=psl,
            classifiers=classifiers,
            test_filter=test_filter,
            repo_map=repo_map,
            mine_patterns=mine_patterns,
        )
        self.psl = self.context.psl
        self.classifiers = self.context.classifiers
        self.test_filter = self.context.test_filter
        self.repo_filter = self.context.repo_filter
        self.matcher = self.context.matcher
        self.analyzer = self.context.analyzer
        self.mine_patterns = mine_patterns
        self.shards = shards
        #: Stage operators by name; batch runs execute their
        #: ``run_batch`` bodies, the incremental engine their ``advance``.
        self.ops = {stage.name: stage for stage in build_stages()}
        #: The whole-dataset view (shard views are derived from it).
        self.view = DatasetView(zonedb, whois)

    # -- helpers -----------------------------------------------------------

    def _was_registered_before(self, registered_domain: str, day: int) -> bool:
        """Collision check: did the domain exist before the rename?"""
        return self.context.was_registered_before(registered_domain, day)

    def _classify_pattern(
        self, name: str, classifier: IdiomClassifier
    ) -> SacrificialNameserver:
        return self.context.classify_pattern(name, classifier)

    def _classify_match(self, match: MatchResult) -> SacrificialNameserver | None:
        return self.context.classify_match(match)

    # -- the run -----------------------------------------------------------------

    #: Ordered checkpointable stages of one run.
    STAGES = (
        "candidates",
        "mine",
        "test-filter",
        "pattern-sweep",
        "single-repo",
        "match",
    )

    def run(self, *, checkpoint_path: str | Path | None = None) -> PipelineResult:
        """Execute every stage and return the final classified set.

        Unsharded (``shards == 1``): with a ``checkpoint_path`` file,
        intermediate state is pickled after each stage (atomically: temp
        file + rename); a re-run against the same inputs resumes after
        the last completed stage, so a killed pipeline finishes from
        where it stopped and produces an identical result.

        Sharded (``shards > 1``): ``checkpoint_path`` names a directory
        holding one checkpoint per completed shard; a re-run skips
        finished shards and recomputes only the missing ones before
        merging.
        """
        if self.shards == 1:
            return self._run_single(checkpoint_path)
        checkpoint_dir = Path(checkpoint_path) if checkpoint_path is not None else None
        shard_states = [
            self._run_shard(shard, checkpoint_dir=checkpoint_dir)
            for shard in ShardSpec.partition(self.shards)
        ]
        return self.merge_shard_states(shard_states)

    def _run_single(self, checkpoint_path: str | Path | None) -> PipelineResult:
        state = self._load_checkpoint(checkpoint_path)
        stages = {
            "candidates": self._stage_candidates,
            "mine": self._stage_mine,
            "test-filter": self._stage_test_filter,
            "pattern-sweep": self._stage_pattern_sweep,
            "single-repo": self._stage_single_repo,
            "match": self._stage_match,
        }
        for name in self.STAGES:
            if name in state["done"]:
                continue
            _run_stage_observed(name, stages[name], self.view, state)
            state["done"].add(name)
            self._save_checkpoint(checkpoint_path, state)
        return self._finalize(state)

    def shard_checkpoint_path(self, root: str | Path, shard: ShardSpec) -> Path:
        """Checkpoint file for one shard under a checkpoint directory."""
        return Path(root) / f"shard-{shard.index:04d}-of-{shard.count:04d}.pkl"

    #: Per-shard stages, in execution order (mining runs post-merge).
    SHARD_STAGES = (
        "candidates",
        "test-filter",
        "pattern-sweep",
        "single-repo",
        "match",
    )

    def new_shard_state(self) -> dict[str, Any]:
        """A fresh, empty shard state (nothing done yet)."""
        return {"done": set(), "funnel": PipelineFunnel()}

    def run_shard_stages(
        self,
        shard: ShardSpec,
        state: dict[str, Any],
        *,
        after_stage: "Callable[[str, dict[str, Any]], None] | None" = None,
    ) -> dict[str, Any]:
        """Run every not-yet-done per-nameserver stage for one shard.

        ``state`` may come from :meth:`new_shard_state` or a checkpoint
        written mid-shard; stages in ``state["done"]`` are skipped, so
        execution resumes exactly where durable progress stopped.
        ``after_stage(name, state)`` runs after each stage completes —
        the supervised runner checkpoints (and chaos-kills) there.
        """
        view = DatasetView(self.zonedb, self.whois, shard)
        stages = {
            "candidates": self._stage_candidates,
            "test-filter": self._stage_test_filter,
            "pattern-sweep": self._stage_pattern_sweep,
            "single-repo": self._stage_single_repo,
            "match": self._stage_match,
        }
        for name in self.SHARD_STAGES:
            if name in state["done"]:
                continue
            _run_stage_observed(name, stages[name], view, state)
            if name == "candidates":
                # Mining needs cross-shard support counts, so it runs
                # post-merge; keep the pre-test-filter candidate list
                # the miner consumes.
                state["stage1"] = list(state["candidates"])
            state["done"].add(name)
            if after_stage is not None:
                after_stage(name, state)
        return state

    def _run_shard(
        self, shard: ShardSpec, *, checkpoint_dir: Path | None = None
    ) -> dict[str, Any]:
        """Run every per-nameserver stage for one shard (restartable)."""
        path: Path | None = None
        if checkpoint_dir is not None:
            path = self.shard_checkpoint_path(checkpoint_dir, shard)
            if path.exists():
                return load_pipeline_state(path.read_bytes())
        state = self.run_shard_stages(shard, self.new_shard_state())
        if path is not None:
            self._save_checkpoint(path, state)
        return state

    def merge_shard_states(
        self, shard_states: list[dict[str, Any]]
    ) -> PipelineResult:
        """Reassemble shard states into the unsharded run's exact result.

        Funnel counts sum (shards partition the nameserver population);
        every merged list is re-sorted by the same key that orders it in
        the unsharded run, and names land in exactly one shard, so the
        union of the per-shard classified sets is disjoint.
        """
        funnel = PipelineFunnel()
        for state in shard_states:
            shard_funnel = state["funnel"]
            funnel.total_nameservers += shard_funnel.total_nameservers
            funnel.candidates += shard_funnel.candidates
            funnel.test_removed += shard_funnel.test_removed
            funnel.pattern_classified += shard_funnel.pattern_classified
            funnel.single_repo_removed += shard_funnel.single_repo_removed
            funnel.history_matched += shard_funnel.history_matched
            funnel.match_classified += shard_funnel.match_classified
        stage1 = sorted(
            (c for state in shard_states for c in state["stage1"]),
            key=lambda c: (c.first_seen, c.name),
        )
        mined: list[SubstringPattern] = []
        if self.mine_patterns:
            mined = mine_substrings_cached(
                (c.name for c in stage1), min_support=MINE_MIN_SUPPORT
            )
        candidates = sorted(
            (c for state in shard_states for c in state["candidates"]),
            key=lambda c: (c.first_seen, c.name),
        )
        sacrificial: dict[str, SacrificialNameserver] = {}
        for state in shard_states:
            sacrificial.update(state["sacrificial"])
        matches = sorted(
            (m for state in shard_states for m in state["matches"]),
            key=lambda m: (m.first_seen, m.candidate),
        )
        merged: dict[str, Any] = {
            "funnel": funnel,
            "candidates": candidates,
            "mined": mined,
            "sacrificial": sacrificial,
            "matches": matches,
        }
        return self._finalize(merged)

    def _load_checkpoint(self, path: str | Path | None) -> dict[str, Any]:
        if path is not None and Path(path).exists():
            return load_pipeline_state(Path(path).read_bytes())
        return self.new_shard_state()

    def _save_checkpoint(self, path: str | Path | None, state: dict[str, Any]) -> None:
        if path is None:
            return
        atomic_write_bytes(Path(path), dump_pipeline_state(state))

    # The stage bodies live on the IncrementalStage operators (see
    # repro.detection.incremental) — one code path for both schedules;
    # these methods keep the stage names the checkpoints and tests know.

    # Stage 1: unresolvable-at-first-reference candidates.
    def _stage_candidates(self, view: DatasetView, state: dict[str, Any]) -> None:
        self.ops["candidates"].run_batch(self.context, view, state)

    # Stage 2: pattern discovery (for the record; confirmation is
    # encoded in the classifier list, as manual confirmation was in the
    # paper).
    def _stage_mine(self, view: DatasetView, state: dict[str, Any]) -> None:
        self.ops["mine"].run_batch(self.context, view, state)

    # Stage 3: drop registry test nameservers.
    def _stage_test_filter(self, view: DatasetView, state: dict[str, Any]) -> None:
        self.ops["test-filter"].run_batch(self.context, view, state)

    # Stage 4: confirmed-pattern sweep over the view's population.
    def _stage_pattern_sweep(self, view: DatasetView, state: dict[str, Any]) -> None:
        self.ops["pattern-sweep"].run_batch(self.context, view, state)

    # Stage 5: single-repository filter on the remaining candidates.
    def _stage_single_repo(self, view: DatasetView, state: dict[str, Any]) -> None:
        self.ops["single-repo"].run_batch(self.context, view, state)

    # Stage 6: original-nameserver matching and classification.
    def _stage_match(self, view: DatasetView, state: dict[str, Any]) -> None:
        self.ops["match"].run_batch(self.context, view, state)

    def _finalize(self, state: dict[str, Any]) -> PipelineResult:
        funnel = state["funnel"]
        final = sorted(
            state["sacrificial"].values(), key=lambda s: (s.created_day, s.name)
        )
        funnel.sacrificial_total = len(final)
        return PipelineResult(
            sacrificial=final,
            funnel=funnel,
            mined_patterns=state["mined"],
            matches=state["matches"],
            candidates=state["candidates"],
            coverage=CoverageAnnotations.from_reports(self.zonedb.ingest_reports),
        )
