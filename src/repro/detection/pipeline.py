"""The end-to-end detection pipeline (§3.2).

Runs the full methodology against a zone database and WHOIS archive:

1. candidate-set construction (unresolvable at first reference);
2. substring pattern mining (recorded for inspection — the "discovery"
   half of §3.2.2);
3. test-nameserver removal;
4. pattern-classifier sweep over the **entire** nameserver population
   (the paper's final sets come from matching confirmed idioms against
   the whole longitudinal data set, which is how resolvable accidents
   like PLEASEDROPTHISHOST collisions are still counted);
5. single-repository filtering of the remaining candidates;
6. original-nameserver history matching with WHOIS registrar
   attribution.

The output is the final classified set of sacrificial nameservers plus a
stage-by-stage funnel (the §3 numbers: 20M → 312,328 → −28,614 test →
−11,403 single-repo → 202,624 sacrificial).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.dnscore.psl import PublicSuffixList, default_psl
from repro.detection.candidates import CandidateNameserver, build_candidate_set
from repro.detection.idioms import (
    IdiomClass,
    IdiomClassifier,
    classify_match,
    known_classifiers,
)
from repro.detection.matching import MatchResult, OriginalNameserverMatcher
from repro.detection.repository_check import RepositoryMap, SingleRepositoryFilter
from repro.detection.resolvability import ResolvabilityAnalyzer
from repro.detection.substrings import SubstringPattern, mine_substrings
from repro.detection.testns import TestNameserverFilter
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase


@dataclass(frozen=True, slots=True)
class SacrificialNameserver:
    """One detected sacrificial nameserver."""

    name: str
    created_day: int
    idiom_id: str
    hijackable: bool
    registrar: str | None
    registered_domain: str | None
    source: str  # "pattern" or "match"
    original_ns: str | None = None
    original_domain: str | None = None
    collision: bool = False  # name landed on an already-registered domain


@dataclass
class PipelineFunnel:
    """Stage-by-stage counts (the paper's §3 numbers, at sim scale)."""

    total_nameservers: int = 0
    candidates: int = 0
    test_removed: int = 0
    pattern_classified: int = 0
    single_repo_removed: int = 0
    history_matched: int = 0
    match_classified: int = 0
    sacrificial_total: int = 0

    def rows(self) -> list[tuple[str, int]]:
        """Ordered (label, count) pairs for reporting."""
        return [
            ("nameservers in zone data", self.total_nameservers),
            ("unresolvable at first reference (candidates)", self.candidates),
            ("removed as registry test nameservers", self.test_removed),
            ("classified by confirmed patterns", self.pattern_classified),
            ("eliminated by single-repository property", self.single_repo_removed),
            ("matched to original nameserver", self.history_matched),
            ("classified from history match", self.match_classified),
            ("final sacrificial nameservers", self.sacrificial_total),
        ]


@dataclass
class PipelineResult:
    """Everything the pipeline produces."""

    sacrificial: list[SacrificialNameserver]
    funnel: PipelineFunnel
    mined_patterns: list[SubstringPattern]
    matches: list[MatchResult]
    candidates: list[CandidateNameserver] = field(repr=False, default_factory=list)

    def by_name(self) -> dict[str, SacrificialNameserver]:
        """Index the final set by nameserver name."""
        return {entry.name: entry for entry in self.sacrificial}

    def hijackable(self) -> list[SacrificialNameserver]:
        """The hijackable subset (random-name idioms, no collision)."""
        return [s for s in self.sacrificial if s.hijackable and not s.collision]


class DetectionPipeline:
    """Configurable end-to-end runner for the §3 methodology."""

    def __init__(
        self,
        zonedb: ZoneDatabase,
        whois: WhoisArchive,
        *,
        psl: PublicSuffixList | None = None,
        classifiers: list[IdiomClassifier] | None = None,
        test_filter: TestNameserverFilter | None = None,
        repo_map: RepositoryMap | None = None,
        mine_patterns: bool = True,
    ) -> None:
        self.zonedb = zonedb
        self.whois = whois
        self.psl = psl or default_psl()
        self.classifiers = classifiers or known_classifiers()
        self.test_filter = test_filter or TestNameserverFilter()
        self.repo_filter = SingleRepositoryFilter(zonedb, repo_map or RepositoryMap())
        self.matcher = OriginalNameserverMatcher(zonedb, whois, psl=self.psl)
        self.analyzer = ResolvabilityAnalyzer(zonedb, psl=self.psl)
        self.mine_patterns = mine_patterns

    # -- helpers -----------------------------------------------------------

    def _was_registered_before(self, registered_domain: str, day: int) -> bool:
        """Collision check: did the domain exist before the rename?"""
        record = self.whois.current(registered_domain, day)
        if record is not None and record.created < day:
            return True
        return self.zonedb.domain_present(registered_domain, max(0, day - 1))

    def _classify_pattern(
        self, name: str, classifier: IdiomClassifier
    ) -> SacrificialNameserver:
        first_seen = self.zonedb.first_seen(name) or 0
        registered = self.psl.registered_domain(name)
        collision = False
        if classifier.klass is IdiomClass.RANDOM and registered is not None:
            collision = self._was_registered_before(registered, first_seen)
        return SacrificialNameserver(
            name=name,
            created_day=first_seen,
            idiom_id=classifier.idiom_id,
            hijackable=classifier.hijackable,
            registrar=classifier.registrar_hint,
            registered_domain=registered,
            source="pattern",
            collision=collision,
        )

    def _classify_match(self, match: MatchResult) -> SacrificialNameserver | None:
        idiom_id = classify_match(match)
        if idiom_id is None:
            return None
        registered = self.psl.registered_domain(match.candidate)
        collision = False
        if registered is not None:
            collision = self._was_registered_before(registered, match.first_seen)
        return SacrificialNameserver(
            name=match.candidate,
            created_day=match.first_seen,
            idiom_id=idiom_id,
            hijackable=True,
            registrar=match.registrar,
            registered_domain=registered,
            source="match",
            original_ns=match.original_ns,
            original_domain=match.original_domain,
            collision=collision,
        )

    # -- the run -----------------------------------------------------------------

    def run(self) -> PipelineResult:
        """Execute every stage and return the final classified set."""
        funnel = PipelineFunnel()
        funnel.total_nameservers = self.zonedb.nameserver_count()

        # Stage 1: unresolvable-at-first-reference candidates.
        candidates = build_candidate_set(self.zonedb, self.analyzer)
        funnel.candidates = len(candidates)

        # Stage 2: pattern discovery (for the record; confirmation is
        # encoded in the classifier list, as manual confirmation was in
        # the paper).
        mined: list[SubstringPattern] = []
        if self.mine_patterns:
            mined = mine_substrings((c.name for c in candidates), min_support=4)

        # Stage 3: drop registry test nameservers.
        candidates, test_removed = self.test_filter.partition(candidates)
        funnel.test_removed = len(test_removed)

        # Stage 4: confirmed-pattern sweep over the entire population.
        sacrificial: dict[str, SacrificialNameserver] = {}
        for name in self.zonedb.all_nameservers():
            if self.test_filter.is_test_nameserver(name):
                continue
            for classifier in self.classifiers:
                if classifier.matches_name(name):
                    sacrificial[name] = self._classify_pattern(name, classifier)
                    break
        funnel.pattern_classified = len(sacrificial)

        # Stage 5: single-repository filter on the remaining candidates.
        remaining = [c for c in candidates if c.name not in sacrificial]
        remaining, eliminated = self.repo_filter.partition(remaining)
        funnel.single_repo_removed = len(eliminated)

        # Stage 6: original-nameserver matching and classification.
        matches, _unmatched = self.matcher.match_all(remaining)
        funnel.history_matched = len(matches)
        for match in matches:
            entry = self._classify_match(match)
            if entry is not None and entry.name not in sacrificial:
                sacrificial[entry.name] = entry
        funnel.match_classified = len(sacrificial) - funnel.pattern_classified

        final = sorted(sacrificial.values(), key=lambda s: (s.created_day, s.name))
        funnel.sacrificial_total = len(final)
        return PipelineResult(
            sacrificial=final,
            funnel=funnel,
            mined_patterns=mined,
            matches=matches,
            candidates=candidates,
        )
