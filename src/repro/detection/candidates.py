"""Candidate-set construction (§3.2.1).

The candidate set contains every nameserver that was unresolvable at the
moment it was first referenced by any domain in the zone files. In the
paper this narrows ~20M nameservers to 312,328 candidates; in a simulated
world it narrows thousands to the sacrificial names plus the typo and
test-nameserver noise that later stages must eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.detection.resolvability import ResolvabilityAnalyzer
from repro.zonedb.database import ZoneDatabase


@dataclass(frozen=True, slots=True)
class CandidateNameserver:
    """One unresolvable-at-first-reference nameserver."""

    name: str
    first_seen: int
    referencing_domains: tuple[str, ...]

    @property
    def reference_count(self) -> int:
        """Number of domains delegating to the candidate at first sight."""
        return len(self.referencing_domains)


def build_candidate_set(
    zonedb: ZoneDatabase,
    analyzer: ResolvabilityAnalyzer | None = None,
    *,
    nameservers: Iterable[str] | None = None,
) -> list[CandidateNameserver]:
    """Scan every nameserver in the data set for the candidate criterion.

    Candidates are returned in (first_seen, name) order so downstream
    stages are deterministic. Pass ``nameservers`` to restrict the scan
    to a subset (e.g. one shard of the population).
    """
    analyzer = analyzer or ResolvabilityAnalyzer(zonedb)
    candidates: list[CandidateNameserver] = []
    if nameservers is None:
        nameservers = zonedb.all_nameservers()
    for ns in nameservers:
        verdict = analyzer.unresolvable_at_first_reference(ns)
        if not verdict:
            continue  # resolvable, never referenced, or unassessable
        first_seen = zonedb.first_seen(ns)
        assert first_seen is not None  # guaranteed by the verdict
        referencing = tuple(sorted(zonedb.domains_of_ns(ns, first_seen)))
        candidates.append(
            CandidateNameserver(
                name=ns, first_seen=first_seen, referencing_domains=referencing
            )
        )
    candidates.sort(key=lambda c: (c.first_seen, c.name))
    return candidates
