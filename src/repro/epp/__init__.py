"""EPP (Extensible Provisioning Protocol) registry simulator.

Implements the object model and referential-integrity rules of RFC 5730
(EPP), RFC 5731 (domain mapping), and RFC 5732 (host mapping) to the depth
the paper's mechanism depends on:

* domain objects SHOULD NOT be deleted while subordinate host objects
  exist (RFC 5731 §3.2.2);
* host objects SHOULD NOT be deleted while any domain references them
  (RFC 5732 §3.2.2);
* host objects may be *renamed*; renaming into a namespace **internal** to
  the repository requires the new superordinate domain to exist, while
  renaming into an **external** namespace (a TLD the repository is not
  authoritative for) is unchecked — the loophole that creates sacrificial
  nameservers;
* a host object subordinate to an external namespace can no longer be
  modified by the registrar that renamed it;
* registrar isolation: only the sponsoring registrar may mutate an object.
"""

from repro.epp.errors import EppError, ResultCode
from repro.epp.objects import DomainObject, DomainStatus, HostObject
from repro.epp.repository import EppRepository
from repro.epp.registry import Registry

__all__ = [
    "EppError",
    "ResultCode",
    "DomainObject",
    "DomainStatus",
    "HostObject",
    "EppRepository",
    "Registry",
]
