"""EPP domain and host objects (RFC 5731 / RFC 5732 object model).

A repository stores two object classes. *Domain objects* carry the
registration of a name directly below one of the repository's TLDs,
including its nameserver delegation (a list of host-object references or
external host names). *Host objects* represent nameservers; a host whose
name falls under a domain in the repository is **subordinate** to that
domain (its *superordinate*), while a host named under a foreign TLD is
**external** to the repository.

The linkage bookkeeping on these objects (``linked_domains`` on hosts,
``subordinate_hosts`` on domains) is what lets the repository enforce the
RFC deletion constraints that give rise to sacrificial nameservers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dnscore.names import Name


class DomainStatus(str, Enum):
    """Domain object statuses (the subset relevant to the lifecycle)."""

    OK = "ok"
    CLIENT_HOLD = "clientHold"
    SERVER_HOLD = "serverHold"
    PENDING_DELETE = "pendingDelete"
    CLIENT_DELETE_PROHIBITED = "clientDeleteProhibited"
    SERVER_DELETE_PROHIBITED = "serverDeleteProhibited"
    CLIENT_TRANSFER_PROHIBITED = "clientTransferProhibited"
    SERVER_TRANSFER_PROHIBITED = "serverTransferProhibited"


class HostStatus(str, Enum):
    """Host object statuses."""

    OK = "ok"
    LINKED = "linked"
    PENDING_DELETE = "pendingDelete"


@dataclass
class DomainObject:
    """A registered domain inside an EPP repository.

    ``nameservers`` holds the host *names* the domain delegates to. For
    hosts that exist as objects in the same repository these are object
    references (renaming the host object is visible through the domain
    automatically); the repository resolves names to objects at zone
    generation time, which models that reference semantics.
    """

    name: str
    sponsor: str
    created: int
    expires: int
    statuses: set[DomainStatus] = field(default_factory=lambda: {DomainStatus.OK})
    nameservers: list[str] = field(default_factory=list)
    registrant: str = ""
    #: Transfer authorization code (EPP authInfo); the gaining registrar
    #: must present it to take over sponsorship.
    auth_info: str = ""

    def __post_init__(self) -> None:
        self.name = Name(self.name).text
        self.nameservers = [Name(ns).text for ns in self.nameservers]

    @property
    def is_deletable(self) -> bool:
        """True if no status flag forbids deletion."""
        return not (
            DomainStatus.CLIENT_DELETE_PROHIBITED in self.statuses
            or DomainStatus.SERVER_DELETE_PROHIBITED in self.statuses
        )

    def delegates_to(self, host_name: str) -> bool:
        """True if this domain's NS set includes ``host_name``."""
        return Name(host_name).text in self.nameservers

    def replace_nameserver(self, old: str, new: str) -> None:
        """Swap one NS target for another, preserving order."""
        old_text, new_text = Name(old).text, Name(new).text
        self.nameservers = [
            new_text if ns == old_text else ns for ns in self.nameservers
        ]


@dataclass
class HostObject:
    """A nameserver host object inside an EPP repository.

    ``external`` marks hosts whose superordinate namespace lies outside
    the repository; such hosts carry no addresses in this repository and,
    per operational practice, cannot be further modified by the registrar
    (the property that makes sacrificial renames irreversible).
    """

    name: str
    sponsor: str
    created: int
    addresses: set[str] = field(default_factory=set)
    superordinate: str | None = None
    external: bool = False
    linked_domains: set[str] = field(default_factory=set)
    statuses: set[HostStatus] = field(default_factory=lambda: {HostStatus.OK})

    def __post_init__(self) -> None:
        self.name = Name(self.name).text
        if self.superordinate is not None:
            self.superordinate = Name(self.superordinate).text

    @property
    def is_linked(self) -> bool:
        """True if at least one domain delegates to this host."""
        return bool(self.linked_domains)

    def link(self, domain: str) -> None:
        """Record that ``domain`` delegates to this host."""
        self.linked_domains.add(Name(domain).text)
        self.statuses.add(HostStatus.LINKED)

    def unlink(self, domain: str) -> None:
        """Record that ``domain`` no longer delegates to this host."""
        self.linked_domains.discard(Name(domain).text)
        if not self.linked_domains:
            self.statuses.discard(HostStatus.LINKED)
