"""Registry-side domain expiration pipeline (RFC 3915-style).

Real registrations do not vanish at their expiry date: they pass
through an auto-renew grace window (the registrar may still renew),
then redemption (the domain is suspended — removed from the zone — but
recoverable), then pending-delete, and only then are purged. Purging an
expired domain with linked subordinate hosts is exactly the moment the
paper's rename-then-delete machinery fires.

:class:`ExpiryEngine` tracks scheduled expirations for one repository
and emits :class:`ExpiryTransition`s as simulation time advances; the
caller applies the side effects (suspend, purge) through whatever
channel it owns — the engine never mutates the repository itself, so it
composes with both the standard machinery and the §7.3 cascade fix.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum

from repro.dnscore.names import Name


class ExpiryPhase(str, Enum):
    """Where an expiring registration currently stands."""

    ACTIVE = "active"
    AUTO_RENEW = "autoRenewGrace"
    REDEMPTION = "redemptionPeriod"
    PENDING_DELETE = "pendingDelete"
    PURGED = "purged"

#: The ordered pipeline after the expiry date.
PHASE_ORDER = (
    ExpiryPhase.AUTO_RENEW,
    ExpiryPhase.REDEMPTION,
    ExpiryPhase.PENDING_DELETE,
    ExpiryPhase.PURGED,
)


@dataclass(frozen=True, slots=True)
class ExpiryPolicy:
    """Grace-period lengths in days (ICANN-typical defaults)."""

    auto_renew_days: int = 45
    redemption_days: int = 30
    pending_delete_days: int = 5

    def phase_starts(self, expiry_day: int) -> dict[ExpiryPhase, int]:
        """Day each phase begins for a registration expiring then."""
        auto = expiry_day
        redemption = auto + self.auto_renew_days
        pending = redemption + self.redemption_days
        purge = pending + self.pending_delete_days
        return {
            ExpiryPhase.AUTO_RENEW: auto,
            ExpiryPhase.REDEMPTION: redemption,
            ExpiryPhase.PENDING_DELETE: pending,
            ExpiryPhase.PURGED: purge,
        }


@dataclass(frozen=True, slots=True)
class ExpiryTransition:
    """One phase change emitted by the engine."""

    day: int
    domain: str
    phase: ExpiryPhase


@dataclass
class _Tracked:
    expiry_day: int
    phase: ExpiryPhase = ExpiryPhase.ACTIVE
    generation: int = 0  # bumped on renew/restore to invalidate old events


class ExpiryEngine:
    """Tracks expirations and yields phase transitions in day order."""

    def __init__(self, policy: ExpiryPolicy | None = None) -> None:
        self.policy = policy or ExpiryPolicy()
        self._tracked: dict[str, _Tracked] = {}
        self._heap: list[tuple[int, int, str, ExpiryPhase, int]] = []
        self._counter = 0

    # -- registration lifecycle ------------------------------------------

    def schedule(self, domain: str, expiry_day: int) -> None:
        """Track a registration that will expire on ``expiry_day``."""
        text = Name(domain).text
        entry = self._tracked.get(text)
        if entry is None:
            entry = _Tracked(expiry_day=expiry_day)
            self._tracked[text] = entry
        else:
            entry.expiry_day = expiry_day
            entry.phase = ExpiryPhase.ACTIVE
            entry.generation += 1
        self._push_phases(text, entry)

    def _push_phases(self, domain: str, entry: _Tracked) -> None:
        for phase, day in self.policy.phase_starts(entry.expiry_day).items():
            self._counter += 1
            heapq.heappush(
                self._heap, (day, self._counter, domain, phase, entry.generation)
            )

    def renew(self, domain: str, new_expiry_day: int) -> None:
        """A renewal (or redemption restore): restart the clock."""
        self.schedule(domain, new_expiry_day)

    def cancel(self, domain: str) -> None:
        """Stop tracking (explicit deletion or transfer-out-of-scope)."""
        text = Name(domain).text
        entry = self._tracked.pop(text, None)
        if entry is not None:
            entry.generation += 1  # orphan any queued events

    def phase_of(self, domain: str) -> ExpiryPhase:
        """Current phase (ACTIVE if untracked)."""
        entry = self._tracked.get(Name(domain).text)
        return entry.phase if entry is not None else ExpiryPhase.ACTIVE

    def is_recoverable(self, domain: str) -> bool:
        """True while the registrant can still get the name back."""
        return self.phase_of(domain) in (
            ExpiryPhase.ACTIVE, ExpiryPhase.AUTO_RENEW, ExpiryPhase.REDEMPTION,
        )

    # -- time ----------------------------------------------------------------

    def advance(self, day: int) -> list[ExpiryTransition]:
        """All transitions with ``transition_day <= day``, in order.

        Stale events (superseded by a renew/cancel) are dropped silently.
        Purged domains leave the tracking table; the caller performs the
        actual deletion (registrar machinery, registry purge, or the
        §7.3 cascade).
        """
        transitions: list[ExpiryTransition] = []
        while self._heap and self._heap[0][0] <= day:
            event_day, _seq, domain, phase, generation = heapq.heappop(self._heap)
            entry = self._tracked.get(domain)
            if entry is None or entry.generation != generation:
                continue  # superseded
            if PHASE_ORDER.index(phase) <= (
                -1 if entry.phase is ExpiryPhase.ACTIVE
                else PHASE_ORDER.index(entry.phase)
            ):
                continue  # already past this phase
            entry.phase = phase
            transitions.append(ExpiryTransition(event_day, domain, phase))
            if phase is ExpiryPhase.PURGED:
                del self._tracked[domain]
        return transitions

    def next_transition_day(self) -> int | None:
        """The earliest pending transition day, if any (for schedulers)."""
        while self._heap:
            day, _seq, domain, _phase, generation = self._heap[0]
            entry = self._tracked.get(domain)
            if entry is None or entry.generation != generation:
                heapq.heappop(self._heap)
                continue
            return day
        return None

    def tracked_count(self) -> int:
        """Registrations currently being tracked."""
        return len(self._tracked)
