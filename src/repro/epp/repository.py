"""The EPP object repository: provisioning rules and the rename loophole.

One :class:`EppRepository` backs all TLDs operated by a single registry
operator (e.g. the simulated Verisign repository backs .com, .net, .edu,
and .gov together). This shared-repository scoping is load-bearing for the
paper: a host-object rename performed to delete a .com domain silently
rewrites delegations of .edu/.gov domains in the *same* repository, while
domains in other repositories keep their (now dangling) references.

The repository enforces, per RFC 5731/5732:

* referential integrity — domains cannot be deleted while subordinate
  hosts exist; hosts cannot be deleted while linked to any domain;
* namespace authority — a host can only be created or renamed *into* an
  internal name if its superordinate domain object exists and is sponsored
  by the acting registrar; names under **external** TLDs are outside the
  repository's authority and pass unchecked (the loophole);
* irreversibility — a host subordinate to an external namespace can no
  longer be modified;
* registrar isolation — only an object's sponsoring registrar may mutate
  it.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.dnscore.names import Name
from repro.dnscore.zone import Zone
from repro.epp.errors import EppError, ResultCode
from repro.epp.objects import DomainObject, DomainStatus, HostObject

#: Signature of the optional audit hook: (day, operation, details dict).
AuditHook = Callable[[int, str, dict], None]


class EppRepository:
    """An EPP object repository authoritative for a set of TLDs."""

    def __init__(
        self,
        operator: str,
        tlds: Iterable[str],
        *,
        audit_hook: AuditHook | None = None,
    ) -> None:
        self.operator = operator
        self.tlds = frozenset(Name(t).text for t in tlds)
        for tld in self.tlds:
            if "." in tld:
                raise ValueError(f"repository namespace entries must be TLDs: {tld!r}")
        self._domains: dict[str, DomainObject] = {}
        self._hosts: dict[str, HostObject] = {}
        self._subordinates: dict[str, set[str]] = {}
        self._audit_hook = audit_hook

    # -- namespace helpers -------------------------------------------------

    def is_internal(self, name: str) -> bool:
        """True if ``name`` falls under a TLD this repository operates."""
        return Name(name).tld in self.tlds

    def superordinate_of(self, host_name: str) -> str:
        """The registered domain an internal host name sits under.

        TLD registries register names only at the second level, so the
        superordinate of ``ns1.foo.com`` is ``foo.com``.
        """
        name = Name(host_name)
        if not self.is_internal(name.text):
            raise EppError(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                f"{name.text} is external to repository {self.operator}",
            )
        if len(name.labels) < 2:
            raise EppError(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                f"{name.text} is a bare TLD",
            )
        return ".".join(name.labels[-2:])

    def set_audit_hook(self, hook: AuditHook | None) -> None:
        """Install (or clear) the audit hook after construction."""
        self._audit_hook = hook

    def _audit(self, day: int, operation: str, **details: object) -> None:
        if self._audit_hook is not None:
            self._audit_hook(day, operation, details)

    # -- queries -------------------------------------------------------------

    def domain(self, name: str) -> DomainObject:
        """Fetch a domain object; raises 2303 if absent."""
        obj = self._domains.get(Name(name).text)
        if obj is None:
            raise EppError(ResultCode.OBJECT_DOES_NOT_EXIST, f"domain {name}")
        return obj

    def host(self, name: str) -> HostObject:
        """Fetch a host object; raises 2303 if absent."""
        obj = self._hosts.get(Name(name).text)
        if obj is None:
            raise EppError(ResultCode.OBJECT_DOES_NOT_EXIST, f"host {name}")
        return obj

    def domain_exists(self, name: str) -> bool:
        """Availability check (EPP <check>)."""
        return Name(name).text in self._domains

    def host_exists(self, name: str) -> bool:
        """Host object existence check."""
        return Name(name).text in self._hosts

    def subordinate_hosts(self, domain: str) -> frozenset[str]:
        """Host objects whose superordinate is ``domain``."""
        return frozenset(self._subordinates.get(Name(domain).text, ()))

    def all_domains(self) -> Iterable[DomainObject]:
        """Iterate every domain object (insertion order)."""
        return self._domains.values()

    def all_hosts(self) -> Iterable[HostObject]:
        """Iterate every host object (insertion order)."""
        return self._hosts.values()

    # -- domain commands -------------------------------------------------

    def create_domain(
        self,
        registrar: str,
        name: str,
        *,
        day: int,
        period_years: int = 1,
        nameservers: Iterable[str] = (),
        registrant: str = "",
    ) -> DomainObject:
        """EPP <domain:create>.

        Every nameserver must already exist as a host object in this
        repository (the host-object model used by gTLD registries).
        """
        text = Name(name).text
        tld = Name(text).tld
        if tld not in self.tlds:
            raise EppError(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                f"{text}: repository {self.operator} is not authoritative for .{tld}",
            )
        if len(Name(text).labels) != 2:
            raise EppError(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                f"{text}: only second-level registrations are accepted",
            )
        if text in self._domains:
            raise EppError(ResultCode.OBJECT_EXISTS, f"domain {text}")
        ns_list = [Name(ns).text for ns in nameservers]
        for ns in ns_list:
            if ns not in self._hosts:
                raise EppError(
                    ResultCode.ASSOCIATION_PROHIBITS_OPERATION,
                    f"nameserver host object {ns} does not exist",
                )
        obj = DomainObject(
            name=text,
            sponsor=registrar,
            created=day,
            expires=day + 365 * period_years,
            nameservers=ns_list,
            registrant=registrant,
        )
        self._domains[text] = obj
        for ns in ns_list:
            self._hosts[ns].link(text)
        self._audit(day, "domain:create", domain=text, registrar=registrar)
        return obj

    def delete_domain(self, registrar: str, name: str, *, day: int) -> None:
        """EPP <domain:delete>, enforcing RFC 5731's subordinate-host rule."""
        obj = self.domain(name)
        self._require_sponsor(obj.sponsor, registrar, f"domain {obj.name}")
        if not obj.is_deletable:
            raise EppError(
                ResultCode.STATUS_PROHIBITS_OPERATION,
                f"domain {obj.name} has a deleteProhibited status",
            )
        subs = self._subordinates.get(obj.name)
        if subs:
            raise EppError(
                ResultCode.ASSOCIATION_PROHIBITS_OPERATION,
                f"domain {obj.name} has subordinate hosts: {sorted(subs)}",
            )
        for ns in obj.nameservers:
            host = self._hosts.get(ns)
            if host is not None:
                host.unlink(obj.name)
        del self._domains[obj.name]
        self._audit(day, "domain:delete", domain=obj.name, registrar=registrar)

    def renew_domain(
        self, registrar: str, name: str, *, day: int, period_years: int = 1
    ) -> DomainObject:
        """EPP <domain:renew>."""
        obj = self.domain(name)
        self._require_sponsor(obj.sponsor, registrar, f"domain {obj.name}")
        obj.expires += 365 * period_years
        self._audit(day, "domain:renew", domain=obj.name, registrar=registrar)
        return obj

    def transfer_domain(
        self, gaining: str, name: str, auth_info: str, *, day: int
    ) -> DomainObject:
        """EPP <transfer op="request"> for a domain, simplified.

        The gaining registrar presents the domain's authInfo; on success
        sponsorship changes immediately (the losing registrar's pending
        approve/reject window is collapsed — sufficient for lifecycle
        modeling). Transfer-prohibited statuses block the request.
        """
        obj = self.domain(name)
        if obj.sponsor == gaining:
            raise EppError(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                f"domain {obj.name} is already sponsored by {gaining}",
            )
        if (
            DomainStatus.CLIENT_TRANSFER_PROHIBITED in obj.statuses
            or DomainStatus.SERVER_TRANSFER_PROHIBITED in obj.statuses
        ):
            raise EppError(
                ResultCode.STATUS_PROHIBITS_OPERATION,
                f"domain {obj.name} has a transferProhibited status",
            )
        if obj.auth_info and auth_info != obj.auth_info:
            raise EppError(
                ResultCode.AUTHORIZATION_ERROR,
                f"bad authInfo for domain {obj.name}",
            )
        losing = obj.sponsor
        obj.sponsor = gaining
        self._audit(
            day, "domain:transfer", domain=obj.name, gaining=gaining, losing=losing
        )
        return obj

    def update_domain_ns(
        self,
        registrar: str,
        name: str,
        *,
        day: int,
        add: Iterable[str] = (),
        remove: Iterable[str] = (),
    ) -> DomainObject:
        """EPP <domain:update> restricted to NS add/rem."""
        obj = self.domain(name)
        self._require_sponsor(obj.sponsor, registrar, f"domain {obj.name}")
        add_list = [Name(ns).text for ns in add]
        remove_list = [Name(ns).text for ns in remove]
        for ns in add_list:
            if ns not in self._hosts:
                raise EppError(
                    ResultCode.ASSOCIATION_PROHIBITS_OPERATION,
                    f"nameserver host object {ns} does not exist",
                )
        for ns in remove_list:
            if ns not in obj.nameservers:
                raise EppError(
                    ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                    f"{obj.name} does not delegate to {ns}",
                )
        for ns in remove_list:
            obj.nameservers.remove(ns)
            host = self._hosts.get(ns)
            if host is not None:
                host.unlink(obj.name)
        for ns in add_list:
            if ns not in obj.nameservers:
                obj.nameservers.append(ns)
                self._hosts[ns].link(obj.name)
        self._audit(
            day, "domain:update", domain=obj.name, registrar=registrar,
            add=add_list, remove=remove_list,
        )
        return obj

    def set_domain_status(
        self, registrar: str, name: str, *, day: int,
        add: Iterable[DomainStatus] = (), remove: Iterable[DomainStatus] = (),
    ) -> DomainObject:
        """EPP <domain:update> restricted to status changes."""
        obj = self.domain(name)
        self._require_sponsor(obj.sponsor, registrar, f"domain {obj.name}")
        for status in add:
            obj.statuses.add(status)
        for status in remove:
            obj.statuses.discard(status)
        self._audit(day, "domain:status", domain=obj.name, registrar=registrar)
        return obj

    # -- host commands ---------------------------------------------------

    def create_host(
        self,
        registrar: str,
        name: str,
        *,
        day: int,
        addresses: Iterable[str] = (),
    ) -> HostObject:
        """EPP <host:create>.

        Internal hosts require their superordinate domain to exist and be
        sponsored by the acting registrar, and must carry at least one glue
        address. External hosts (names under foreign TLDs) must not carry
        addresses; the repository has no authority over them.
        """
        text = Name(name).text
        if text in self._hosts:
            raise EppError(ResultCode.OBJECT_EXISTS, f"host {text}")
        addr_set = set(addresses)
        if self.is_internal(text):
            superordinate = self.superordinate_of(text)
            parent = self._domains.get(superordinate)
            if parent is None:
                raise EppError(
                    ResultCode.OBJECT_DOES_NOT_EXIST,
                    f"superordinate domain {superordinate} for host {text}",
                )
            self._require_sponsor(parent.sponsor, registrar, f"domain {superordinate}")
            obj = HostObject(
                name=text, sponsor=registrar, created=day,
                addresses=addr_set, superordinate=superordinate,
            )
            self._subordinates.setdefault(superordinate, set()).add(text)
        else:
            if addr_set:
                raise EppError(
                    ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                    f"external host {text} must not carry addresses",
                )
            obj = HostObject(
                name=text, sponsor=registrar, created=day, external=True,
            )
        self._hosts[text] = obj
        self._audit(day, "host:create", host=text, registrar=registrar)
        return obj

    def delete_host(self, registrar: str, name: str, *, day: int) -> None:
        """EPP <host:delete>, enforcing RFC 5732's linkage rule."""
        obj = self.host(name)
        self._require_sponsor(obj.sponsor, registrar, f"host {obj.name}")
        if obj.is_linked:
            raise EppError(
                ResultCode.ASSOCIATION_PROHIBITS_OPERATION,
                f"host {obj.name} is linked to {len(obj.linked_domains)} domain(s)",
            )
        self._detach_subordinate(obj)
        del self._hosts[obj.name]
        self._audit(day, "host:delete", host=obj.name, registrar=registrar)

    def rename_host(self, registrar: str, old: str, new: str, *, day: int) -> HostObject:
        """EPP <host:update> with a <host:chg><host:name> — the rename.

        This is the operation at the core of the paper. Renaming to an
        internal name is checked against the namespace (the new
        superordinate domain must exist and be sponsored by the acting
        registrar). Renaming to an **external** name is unchecked: the
        repository declares no authority over foreign namespaces. Every
        domain that referenced the host follows the rename automatically,
        because domains reference host *objects*.
        """
        obj = self.host(old)
        self._require_sponsor(obj.sponsor, registrar, f"host {obj.name}")
        if obj.external:
            raise EppError(
                ResultCode.STATUS_PROHIBITS_OPERATION,
                f"host {obj.name} is subordinate to an external namespace "
                "and can no longer be modified",
            )
        new_text = Name(new).text
        if new_text in self._hosts:
            raise EppError(ResultCode.OBJECT_EXISTS, f"host {new_text}")
        old_text = obj.name
        if self.is_internal(new_text):
            superordinate = self.superordinate_of(new_text)
            parent = self._domains.get(superordinate)
            if parent is None:
                raise EppError(
                    ResultCode.OBJECT_DOES_NOT_EXIST,
                    f"superordinate domain {superordinate} for host {new_text}",
                )
            self._require_sponsor(parent.sponsor, registrar, f"domain {superordinate}")
            self._detach_subordinate(obj)
            obj.superordinate = superordinate
            self._subordinates.setdefault(superordinate, set()).add(new_text)
        else:
            self._detach_subordinate(obj)
            obj.superordinate = None
            obj.external = True
            obj.addresses.clear()
        del self._hosts[old_text]
        obj.name = new_text
        self._hosts[new_text] = obj
        for domain_name in obj.linked_domains:
            self._domains[domain_name].replace_nameserver(old_text, new_text)
        self._audit(
            day, "host:rename", old=old_text, new=new_text, registrar=registrar,
            linked=sorted(obj.linked_domains),
        )
        return obj

    def set_host_addresses(
        self, registrar: str, name: str, addresses: Iterable[str], *, day: int
    ) -> HostObject:
        """EPP <host:update> changing glue addresses of an internal host."""
        obj = self.host(name)
        self._require_sponsor(obj.sponsor, registrar, f"host {obj.name}")
        if obj.external:
            raise EppError(
                ResultCode.STATUS_PROHIBITS_OPERATION,
                f"external host {obj.name} cannot carry addresses",
            )
        obj.addresses = set(addresses)
        self._audit(day, "host:addr", host=obj.name, registrar=registrar)
        return obj

    def purge_domain(self, name: str, *, day: int) -> list[str]:
        """Registry-level purge of an expired domain, bypassing RFC advice.

        RFC 5731's subordinate-host rule is a SHOULD NOT, and registry
        back-ends purging long-expired names have been observed to delete
        the domain object while leaving subordinate host objects orphaned
        (their superordinate dangling). This is how a sink domain like the
        real ``dummyns.com`` could lapse and be re-registered by a third
        party while its subordinate host objects kept absorbing
        delegations. Returns the orphaned host names.
        """
        obj = self.domain(name)
        orphans = sorted(self._subordinates.pop(obj.name, ()))
        for host_name in orphans:
            host = self._hosts[host_name]
            host.superordinate = None
        for ns in obj.nameservers:
            host = self._hosts.get(ns)
            if host is not None:
                host.unlink(obj.name)
        del self._domains[obj.name]
        self._audit(day, "domain:purge", domain=obj.name, orphans=orphans)
        return orphans

    # -- zone generation ---------------------------------------------------

    def zone_for(self, tld: str, *, serial: int = 1) -> Zone:
        """Publish the zone for one of this repository's TLDs.

        Domains on hold statuses are withheld from the zone, as real
        registries do. Glue is emitted for every in-bailiwick host object
        carrying addresses.
        """
        tld_text = Name(tld).text
        if tld_text not in self.tlds:
            raise EppError(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                f"repository {self.operator} does not operate .{tld_text}",
            )
        zone = Zone(tld_text, serial=serial)
        for obj in self._domains.values():
            if Name(obj.name).tld != tld_text:
                continue
            if DomainStatus.CLIENT_HOLD in obj.statuses:
                continue
            if DomainStatus.SERVER_HOLD in obj.statuses:
                continue
            if obj.nameservers:
                zone.set_delegation(obj.name, obj.nameservers)
        for host in self._hosts.values():
            if host.external or not host.addresses:
                continue
            if Name(host.name).tld == tld_text:
                zone.set_glue(host.name, host.addresses)
        return zone

    # -- internals ---------------------------------------------------------

    def _require_sponsor(self, sponsor: str, registrar: str, what: str) -> None:
        if sponsor != registrar:
            raise EppError(
                ResultCode.AUTHORIZATION_ERROR,
                f"{what} is sponsored by {sponsor}, not {registrar}",
            )

    def _detach_subordinate(self, host: HostObject) -> None:
        if host.superordinate is not None:
            subs = self._subordinates.get(host.superordinate)
            if subs is not None:
                subs.discard(host.name)
                if not subs:
                    del self._subordinates[host.superordinate]

    def __repr__(self) -> str:
        return (
            f"EppRepository(operator={self.operator!r}, tlds={sorted(self.tlds)}, "
            f"domains={len(self._domains)}, hosts={len(self._hosts)})"
        )
