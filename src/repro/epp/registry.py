"""Registry operators: accreditation, restricted TLDs, zone publication.

A :class:`Registry` wraps one :class:`EppRepository` with the business
rules around it: which registrars are accredited to provision there,
which TLDs are *restricted* (no registrars — the registry itself manages
registrants directly, as EDUCAUSE does for .edu and CISA for .gov), and
daily zone publication.

The simulated default topology mirrors the paper's:

* ``sim-verisign`` operates .com, .net, .edu, .gov in one repository —
  so a rename driven by a .com deletion can rewrite .edu/.gov
  delegations;
* ``sim-afilias`` operates .org and .info in a second repository;
* ``sim-neustar`` operates .biz and .us in a third.

.biz living in a *different* repository from .com is exactly why
renaming unwanted Verisign-repository hosts into .biz works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dnscore.names import Name
from repro.dnscore.zone import Zone
from repro.epp.commands import EppSession
from repro.epp.errors import EppError, ResultCode
from repro.epp.repository import AuditHook, EppRepository


@dataclass(frozen=True, slots=True)
class TldPolicy:
    """Per-TLD registration policy."""

    tld: str
    restricted: bool = False
    description: str = ""


class Registry:
    """A registry operator running one EPP repository."""

    def __init__(
        self,
        operator: str,
        tld_policies: list[TldPolicy],
        *,
        audit_hook: AuditHook | None = None,
    ) -> None:
        self.operator = operator
        self.policies = {Name(p.tld).text: p for p in tld_policies}
        self.repository = EppRepository(
            operator, self.policies.keys(), audit_hook=audit_hook
        )
        self._accredited: set[str] = set()
        self._serial = 0

    @property
    def tlds(self) -> frozenset[str]:
        """All TLDs this registry operates."""
        return self.repository.tlds

    def is_restricted(self, tld: str) -> bool:
        """True if the TLD does not use registrars."""
        return self.policies[Name(tld).text].restricted

    # -- accreditation -----------------------------------------------------

    def accredit(self, registrar: str) -> None:
        """Grant a registrar provisioning access to this repository."""
        self._accredited.add(registrar)

    def is_accredited(self, registrar: str) -> bool:
        """True if ``registrar`` may open sessions here."""
        return registrar in self._accredited

    def session(self, registrar: str) -> EppSession:
        """Open an EPP session for an accredited registrar.

        The registry itself may always open a session under its own
        operator name — that is how restricted TLDs (.edu/.gov) are
        provisioned without registrars.
        """
        if registrar != self.operator and registrar not in self._accredited:
            raise EppError(
                ResultCode.AUTHORIZATION_ERROR,
                f"registrar {registrar} is not accredited at {self.operator}",
            )
        return EppSession(self.repository, registrar)

    def can_register(self, registrar: str, tld: str) -> bool:
        """True if ``registrar`` may create domains under ``tld`` here.

        Restricted TLDs accept registrations only from the registry
        operator itself.
        """
        policy = self.policies.get(Name(tld).text)
        if policy is None:
            return False
        if policy.restricted:
            return registrar == self.operator
        return registrar == self.operator or registrar in self._accredited

    # -- zone publication -------------------------------------------------

    def publish_zone(self, tld: str) -> Zone:
        """Publish today's zone file for one TLD (monotonic serials)."""
        self._serial += 1
        return self.repository.zone_for(tld, serial=self._serial)

    def publish_all(self) -> dict[str, Zone]:
        """Publish zones for every TLD this registry operates."""
        return {tld: self.publish_zone(tld) for tld in sorted(self.tlds)}

    def __repr__(self) -> str:
        return f"Registry(operator={self.operator!r}, tlds={sorted(self.tlds)})"


@dataclass
class RegistryRoster:
    """The full set of registries in a simulated ecosystem."""

    registries: list[Registry] = field(default_factory=list)

    def add(self, registry: Registry) -> None:
        """Add a registry; TLD sets must not overlap."""
        for existing in self.registries:
            overlap = existing.tlds & registry.tlds
            if overlap:
                raise ValueError(
                    f"TLDs {sorted(overlap)} already operated by {existing.operator}"
                )
        self.registries.append(registry)

    def registry_for(self, tld_or_name: str) -> Registry:
        """The registry operating the TLD of ``tld_or_name``."""
        tld = Name(tld_or_name).tld
        for registry in self.registries:
            if tld in registry.tlds:
                return registry
        raise KeyError(f"no registry operates .{tld}")

    def operates(self, tld_or_name: str) -> bool:
        """True if some registry in the roster operates that TLD."""
        try:
            self.registry_for(tld_or_name)
        except KeyError:
            return False
        return True

    def all_tlds(self) -> frozenset[str]:
        """Union of all operated TLDs."""
        tlds: set[str] = set()
        for registry in self.registries:
            tlds |= registry.tlds
        return frozenset(tlds)

    def same_repository(self, name_a: str, name_b: str) -> bool:
        """True if two names' TLDs live in the same EPP repository."""
        try:
            return self.registry_for(name_a) is self.registry_for(name_b)
        except KeyError:
            return False


def default_roster(audit_hook: AuditHook | None = None) -> RegistryRoster:
    """The paper-shaped registry topology (see module docstring)."""
    roster = RegistryRoster()
    roster.add(
        Registry(
            "sim-verisign",
            [
                TldPolicy("com", description="legacy gTLD"),
                TldPolicy("net", description="legacy gTLD"),
                TldPolicy("edu", restricted=True, description="EDUCAUSE-managed"),
                TldPolicy("gov", restricted=True, description="CISA-managed"),
            ],
            audit_hook=audit_hook,
        )
    )
    roster.add(
        Registry(
            "sim-afilias",
            [
                TldPolicy("org", description="legacy gTLD"),
                TldPolicy("info", description="legacy gTLD"),
            ],
            audit_hook=audit_hook,
        )
    )
    roster.add(
        Registry(
            "sim-neustar",
            [
                TldPolicy("biz", description="legacy gTLD"),
                TldPolicy("us", description="ccTLD"),
            ],
            audit_hook=audit_hook,
        )
    )
    return roster
