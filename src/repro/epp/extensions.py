"""Proposed EPP fixes from the paper's §7.3, implemented.

The paper sketches three robust alternatives to sink domains; this module
makes each of them executable so counterfactual worlds can measure what
they would have prevented:

* **Reserved-TLD renaming** — require renames to land under an
  IETF-reserved TLD (``.invalid``, RFC 2606/6761). No registry sells it,
  so sacrificial names are permanently unregisterable. Implemented as
  :func:`invalid_tld_idiom` (a ``ReservedLabelIdiom`` under ``invalid``),
  plus :class:`ReservedTldPolicy` for repositories that *enforce* the
  rule on the rename operation itself.

* **Cascade deletion** — change RFC 5731's deletion rule so deleting a
  domain also removes all *references* to its subordinate host objects.
  No dangling delegations are ever created inside the repository; the
  affected domains simply lose the dead nameserver (and, if it was their
  only one, drop out of the zone — the availability cost the paper
  acknowledges). Implemented by :func:`cascade_delete_domain`.

* **Inter-registry deletion notification** — cascade deletion cannot fix
  references *across* repositories (a .org domain delegating to a .com
  host). :class:`DeletionNotificationBus` carries deleted-host
  announcements between repositories, which drop their matching external
  host references on receipt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dnscore.names import Name
from repro.epp.errors import EppError, ResultCode
from repro.epp.objects import HostObject
from repro.epp.repository import EppRepository
from repro.registrar.idioms import RenamingIdiom, ReservedLabelIdiom

#: TLDs reserved by RFC 2606 / RFC 6761 — never sold by any registry.
RESERVED_TLDS = frozenset({"invalid", "test", "example", "localhost"})


def invalid_tld_idiom() -> ReservedLabelIdiom:
    """The §7.3 proposal: rename unwanted hosts under ``.invalid``."""
    return ReservedLabelIdiom(apex="invalid")


@dataclass
class ReservedTldPolicy:
    """Server-side enforcement of reserved-TLD renaming.

    Wraps a repository's rename operation: renames whose target is not
    under a reserved TLD (and not internal to the repository, i.e. sink
    renames the registrar provably controls) are rejected with a policy
    error. This is what an amended EPP standard would make registries do.
    """

    repository: EppRepository
    allow_internal_sinks: bool = True

    def rename_host(
        self, registrar: str, old: str, new: str, *, day: int
    ) -> HostObject:
        """Policy-checked <host:update> name change."""
        target = Name(new)
        if target.tld not in RESERVED_TLDS:
            if not (self.allow_internal_sinks and self.repository.is_internal(new)):
                raise EppError(
                    ResultCode.PARAMETER_VALUE_POLICY_ERROR,
                    f"rename target {target.text} is not under a reserved TLD",
                )
        return self.repository.rename_host(registrar, old, new, day=day)


def cascade_delete_domain(
    repository: EppRepository, registrar: str, name: str, *, day: int
) -> dict[str, list[str]]:
    """Delete a domain with §7.3 cascade semantics.

    For every subordinate host object: remove it from the delegation of
    each domain that references it (the sponsoring registrar cannot do
    this under standard EPP isolation — the *registry* performs it as
    part of the deletion transaction), then delete the host, then the
    domain. Returns {host: [domains whose delegation was trimmed]}.

    Domains left with an empty nameserver set drop out of the zone:
    cascade deletion trades dangling-delegation risk for immediate,
    visible breakage — the paper's availability/integrity trade-off.
    """
    obj = repository.domain(name)
    if obj.sponsor != registrar:
        raise EppError(
            ResultCode.AUTHORIZATION_ERROR,
            f"domain {name} is sponsored by {obj.sponsor}, not {registrar}",
        )
    trimmed: dict[str, list[str]] = {}
    if obj.nameservers:
        repository.update_domain_ns(
            registrar, name, day=day, remove=list(obj.nameservers)
        )
    for host_name in sorted(repository.subordinate_hosts(name)):
        host = repository.host(host_name)
        affected = sorted(host.linked_domains)
        for domain_name in affected:
            # Registry-level action: bypass registrar isolation for the
            # reference removal only (the cascade is a registry function).
            linked = repository.domain(domain_name)
            repository.update_domain_ns(
                linked.sponsor, domain_name, day=day, remove=[host_name]
            )
        repository.delete_host(registrar, host_name, day=day)
        trimmed[host_name] = affected
    repository.delete_domain(registrar, name, day=day)
    return trimmed


@dataclass
class DeletionNotificationBus:
    """Inter-registry deleted-nameserver announcements (§7.3).

    Repositories subscribe; when any repository cascade-deletes a host,
    it publishes the host name, and every *other* repository that holds
    an external host object by that name removes its references too.
    """

    _subscribers: list[EppRepository] = field(default_factory=list)
    _log: list[tuple[int, str, str]] = field(default_factory=list)
    #: Optional observer for integration with world event logs.
    on_reference_removed: Callable[[int, str, str], None] | None = None

    def subscribe(self, repository: EppRepository) -> None:
        """Register a repository to receive announcements."""
        if repository not in self._subscribers:
            self._subscribers.append(repository)

    def publish(self, origin: EppRepository, host_name: str, *, day: int) -> int:
        """Announce a deleted nameserver; returns references removed."""
        host_text = Name(host_name).text
        removed = 0
        for repository in self._subscribers:
            if repository is origin:
                continue
            if not repository.host_exists(host_text):
                continue
            host = repository.host(host_text)
            if not host.external:
                continue  # an unrelated internal host that shares the name
            for domain_name in sorted(host.linked_domains):
                sponsor = repository.domain(domain_name).sponsor
                repository.update_domain_ns(
                    sponsor, domain_name, day=day, remove=[host_text]
                )
                removed += 1
                self._log.append((day, repository.operator, domain_name))
                if self.on_reference_removed is not None:
                    self.on_reference_removed(day, repository.operator, domain_name)
            repository.delete_host(host.sponsor, host_text, day=day)
        return removed

    def announcements(self) -> list[tuple[int, str, str]]:
        """(day, repository, domain) reference removals performed."""
        return list(self._log)


def cascade_delete_everywhere(
    repositories: list[EppRepository],
    registrar: str,
    name: str,
    *,
    day: int,
    bus: DeletionNotificationBus | None = None,
) -> dict[str, list[str]]:
    """Cascade-delete a domain and propagate across repositories.

    The combination the paper calls the "more ambitious approach":
    cascade semantics inside the home repository plus bus notifications
    that clean up cross-repository references to the deleted hosts.
    """
    home = next(
        (repo for repo in repositories if repo.is_internal(name)), None
    )
    if home is None:
        raise EppError(
            ResultCode.OBJECT_DOES_NOT_EXIST,
            f"no repository is authoritative for {name}",
        )
    trimmed = cascade_delete_domain(home, registrar, name, day=day)
    if bus is not None:
        for host_name in trimmed:
            bus.publish(home, host_name, day=day)
    return trimmed
