"""A command/response façade over :class:`EppRepository`.

Registrar provisioning systems speak EPP as request/response frames and
branch on result *codes* rather than exceptions. :class:`EppSession`
provides that style: each command returns a :class:`Result` whose
``code`` is an RFC 5730 result code, and the session keeps a transcript,
which the tests and the deletion-machinery logic use to assert on exact
protocol behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.dnscore.errors import NameError_
from repro.epp.errors import EppError, MESSAGES, ResultCode
from repro.epp.repository import EppRepository


@dataclass(frozen=True, slots=True)
class Result:
    """One EPP command response."""

    code: ResultCode
    command: str
    detail: str = ""
    data: Any = None

    @property
    def ok(self) -> bool:
        """True for 1xxx result codes."""
        return self.code.is_success

    @property
    def message(self) -> str:
        """The canonical RFC 5730 response text for this code."""
        return MESSAGES.get(self.code, "EPP error")


@dataclass
class TranscriptEntry:
    """One command/response pair retained in the session transcript."""

    day: int
    command: str
    args: dict
    result: Result


@dataclass
class EppSession:
    """A registrar's authenticated session against one repository.

    The session binds the registrar identity once (EPP <login>), so
    commands cannot accidentally act as a different sponsor — mirroring
    how EPP authorization actually works.
    """

    repository: EppRepository
    registrar: str
    transcript: list[TranscriptEntry] = field(default_factory=list)

    def _run(
        self, day: int, command: str, fn: Callable[[], Any], /, **args: object
    ) -> Result:
        try:
            data = fn()
        except EppError as exc:
            result = Result(exc.code, command, detail=exc.detail)
        except NameError_ as exc:
            # Syntactically invalid names are a command-syntax failure in
            # real EPP; surface them as a result, never as a crash.
            result = Result(
                ResultCode.PARAMETER_VALUE_POLICY_ERROR, command, detail=str(exc)
            )
        else:
            result = Result(ResultCode.OK, command, data=data)
        self.transcript.append(TranscriptEntry(day, command, args, result))
        return result

    # -- domain commands ---------------------------------------------------

    def domain_check(self, name: str, *, day: int = 0) -> Result:
        """<domain:check> — availability query; ``data`` is True if free."""
        return self._run(
            day, "domain:check",
            lambda: not self.repository.domain_exists(name), name=name,
        )

    def domain_create(
        self,
        name: str,
        *,
        day: int,
        period_years: int = 1,
        nameservers: Iterable[str] = (),
        registrant: str = "",
    ) -> Result:
        """<domain:create>."""
        return self._run(
            day, "domain:create",
            lambda: self.repository.create_domain(
                self.registrar, name, day=day, period_years=period_years,
                nameservers=nameservers, registrant=registrant,
            ),
            name=name,
        )

    def domain_delete(self, name: str, *, day: int) -> Result:
        """<domain:delete>."""
        return self._run(
            day, "domain:delete",
            lambda: self.repository.delete_domain(self.registrar, name, day=day),
            name=name,
        )

    def domain_renew(self, name: str, *, day: int, period_years: int = 1) -> Result:
        """<domain:renew>."""
        return self._run(
            day, "domain:renew",
            lambda: self.repository.renew_domain(
                self.registrar, name, day=day, period_years=period_years,
            ),
            name=name,
        )

    def domain_update_ns(
        self, name: str, *, day: int,
        add: Iterable[str] = (), remove: Iterable[str] = (),
    ) -> Result:
        """<domain:update> for NS changes."""
        return self._run(
            day, "domain:update",
            lambda: self.repository.update_domain_ns(
                self.registrar, name, day=day, add=add, remove=remove,
            ),
            name=name, add=list(add), remove=list(remove),
        )

    def domain_transfer(self, name: str, auth_info: str, *, day: int) -> Result:
        """<transfer op="request"> — this session is the gaining registrar."""
        return self._run(
            day, "domain:transfer",
            lambda: self.repository.transfer_domain(
                self.registrar, name, auth_info, day=day
            ),
            name=name,
        )

    def domain_info(self, name: str, *, day: int = 0) -> Result:
        """<domain:info>."""
        return self._run(
            day, "domain:info", lambda: self.repository.domain(name), name=name,
        )

    # -- host commands -----------------------------------------------------

    def host_create(
        self, name: str, *, day: int, addresses: Iterable[str] = ()
    ) -> Result:
        """<host:create>."""
        return self._run(
            day, "host:create",
            lambda: self.repository.create_host(
                self.registrar, name, day=day, addresses=addresses,
            ),
            name=name,
        )

    def host_delete(self, name: str, *, day: int) -> Result:
        """<host:delete>."""
        return self._run(
            day, "host:delete",
            lambda: self.repository.delete_host(self.registrar, name, day=day),
            name=name,
        )

    def host_rename(self, old: str, new: str, *, day: int) -> Result:
        """<host:update> with a name change — the sacrificial rename."""
        return self._run(
            day, "host:rename",
            lambda: self.repository.rename_host(self.registrar, old, new, day=day),
            old=old, new=new,
        )

    def host_set_addresses(
        self, name: str, addresses: Iterable[str], *, day: int
    ) -> Result:
        """<host:update> replacing the host's glue address set."""
        return self._run(
            day, "host:addr",
            lambda: self.repository.set_host_addresses(
                self.registrar, name, addresses, day=day,
            ),
            name=name, addresses=list(addresses),
        )

    def host_info(self, name: str, *, day: int = 0) -> Result:
        """<host:info>."""
        return self._run(
            day, "host:info", lambda: self.repository.host(name), name=name,
        )

    def failures(self) -> list[TranscriptEntry]:
        """Transcript entries whose result was an error."""
        return [entry for entry in self.transcript if not entry.result.ok]
