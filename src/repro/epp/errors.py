"""EPP result codes (RFC 5730 §3) and the library's EPP exception."""

from __future__ import annotations

from enum import IntEnum


class ResultCode(IntEnum):
    """The subset of RFC 5730 result codes the simulator produces."""

    OK = 1000
    OK_PENDING = 1001
    UNIMPLEMENTED_OPTION = 2102
    AUTHORIZATION_ERROR = 2201
    OBJECT_EXISTS = 2302
    OBJECT_DOES_NOT_EXIST = 2303
    STATUS_PROHIBITS_OPERATION = 2304
    ASSOCIATION_PROHIBITS_OPERATION = 2305
    PARAMETER_VALUE_POLICY_ERROR = 2306

    @property
    def is_success(self) -> bool:
        """RFC 5730: codes in the 1xxx range indicate success."""
        return 1000 <= int(self) < 2000


#: Human-readable messages matching RFC 5730's canonical response text.
MESSAGES: dict[ResultCode, str] = {
    ResultCode.OK: "Command completed successfully",
    ResultCode.OK_PENDING: "Command completed successfully; action pending",
    ResultCode.UNIMPLEMENTED_OPTION: "Unimplemented option",
    ResultCode.AUTHORIZATION_ERROR: "Authorization error",
    ResultCode.OBJECT_EXISTS: "Object exists",
    ResultCode.OBJECT_DOES_NOT_EXIST: "Object does not exist",
    ResultCode.STATUS_PROHIBITS_OPERATION: "Object status prohibits operation",
    ResultCode.ASSOCIATION_PROHIBITS_OPERATION: "Object association prohibits operation",
    ResultCode.PARAMETER_VALUE_POLICY_ERROR: "Parameter value policy error",
}


class EppError(Exception):
    """An EPP command failed; carries the RFC 5730 result code."""

    def __init__(self, code: ResultCode, detail: str = "") -> None:
        self.code = code
        self.detail = detail
        message = MESSAGES.get(code, "EPP error")
        super().__init__(f"{int(code)} {message}" + (f": {detail}" if detail else ""))
