"""Ablation A-SEL — is Table 3's disparity behavioural?

The paper's headline split (5% of nameservers hijacked vs 32% of
domains) is attributed to hijacker selectivity. Re-running the world
with non-selective hijackers (threshold 1, saturated interest, no
capacity limit) collapses the disparity: the NS fraction balloons and
the domain/NS amplification falls toward 1.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.study import StudyAnalysis
from repro.analysis.tables import table3
from repro.detection.pipeline import DetectionPipeline
from repro.ecosystem.counterfactual import greedy_hijackers_scenario
from repro.ecosystem.world import World


def test_bench_ablation_selectivity(benchmark, bundle):
    def run_greedy():
        world = World(greedy_hijackers_scenario(scale=0.1)).run()
        pipeline = DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False
        ).run()
        return table3(StudyAnalysis(pipeline, world.zonedb, world.whois))

    greedy = benchmark.pedantic(run_greedy, rounds=2, iterations=1)
    baseline = table3(bundle.study)
    base_amp = baseline.domain_fraction / baseline.ns_fraction
    greedy_amp = greedy.domain_fraction / max(greedy.ns_fraction, 1e-9)
    assert greedy.ns_fraction > 3 * baseline.ns_fraction
    assert greedy_amp < base_amp / 2
    emit(format_table(
        ["hijacker policy", "NS hijacked", "domains hijacked", "amplification"],
        [
            ("selective (paper-shaped)", f"{baseline.ns_fraction:.1%}",
             f"{baseline.domain_fraction:.1%}", f"{base_amp:.1f}x"),
            ("greedy (ablation)", f"{greedy.ns_fraction:.1%}",
             f"{greedy.domain_fraction:.1%}", f"{greedy_amp:.1f}x"),
        ],
        title="Ablation: hijacker selectivity drives the Table 3 disparity",
    ))
