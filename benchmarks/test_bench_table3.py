"""Experiment T3 — Table 3: hijackable vs hijacked totals.

Paper: 5.07% of hijackable sacrificial nameservers were registered, yet
31.95% of the exposed domains were hijacked — hijackers are selective.
The reproduced percentages must keep that small-NS%, much-larger-domain%
disparity.
"""

from conftest import emit

from repro.analysis.report import render_table3
from repro.analysis.tables import table3


def test_bench_table3(benchmark, bundle):
    summary = benchmark(table3, bundle.study)
    assert 0.02 < summary.ns_fraction < 0.12
    assert summary.domain_fraction / summary.ns_fraction > 3.5
    emit(render_table3(bundle.study))
