"""Experiment F3 — Figure 3: new hijackable domains per month.

The monthly series of domains newly exposed by sacrificial renames,
April 2011 – September 2020. Paper: a clear downward trend, yet
thousands of domains still newly at risk each month.
"""

from conftest import emit

from repro.analysis.exposure import halves_ratio, new_hijackable_per_month, trend_slope
from repro.analysis.report import render_figure3


def test_bench_figure3(benchmark, bundle):
    series = benchmark(new_hijackable_per_month, bundle.study)
    assert trend_slope(series) < 0
    assert halves_ratio(series) < 0.85
    emit(render_figure3(bundle.study))
