"""Infrastructure benchmark: data-set characterization (§3.2 style).

Computes and prints the corpus overview the paper gives for CAIDA-DZDB
("1250 zones … 530.4M domains and 20.8M nameservers"), at simulation
scale, from the interval database.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.zonedb.stats import dataset_stats


def test_bench_dataset(benchmark, bundle):
    stats = benchmark(dataset_stats, bundle.world.zonedb)
    assert stats.total_domains > 5000
    assert stats.total_nameservers > 1000
    emit(format_table(
        ["measure", "value"], stats.rows(),
        title="Data set overview (CAIDA-DZDB substitute, 1:100 scale)",
    ))
