"""Infrastructure benchmark: building and running a simulated world.

Not a paper artifact, but the substrate cost every experiment pays: the
event-driven nine-year simulation (registrations, deletions, renames,
hijacks, remediation) at 1:1000 scale per round.
"""

from repro.ecosystem.config import tiny_scenario
from repro.ecosystem.world import World


def test_bench_world_simulation(benchmark):
    def run_world():
        return World(tiny_scenario(seed=99)).run()

    result = benchmark.pedantic(run_world, rounds=3, iterations=1)
    assert result.log.renames
    assert result.log.hijacks
