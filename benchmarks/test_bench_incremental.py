"""Experiment S-INC — the daily-update cost of the incremental engine.

Measures what a production operator pays per day once history is
standing: folding the final recorded day batch into an engine already
advanced through day N-1, then reconstructing the full result. The
assertion is the engine's contract — the reconstructed result is
bit-identical (same semantic digest) to a batch re-run over the whole
history it replaced.
"""

from conftest import emit

from repro.detection.incremental import IncrementalDetectionEngine
from repro.detection.pipeline import DetectionPipeline
from repro.runner.execution import result_digest
from repro.store.dataset import DeltaView


def test_bench_incremental_final_day(benchmark, bundle):
    zonedb = bundle.world.zonedb
    whois = bundle.world.whois
    batches = DeltaView(zonedb).batches()
    final_day, final_events = batches[-1]

    def setup():
        engine = IncrementalDetectionEngine(whois, mine_patterns=False)
        for day, events in batches[:-1]:
            engine.advance(day, events)
        engine.result()  # a standing run folds daily, so arrive warm
        return (engine,), {}

    def final_fold(engine):
        engine.advance(final_day, final_events)
        return engine.result()

    result = benchmark.pedantic(final_fold, setup=setup, rounds=3, iterations=1)
    batch = DetectionPipeline(zonedb, whois, mine_patterns=False).run()
    assert result_digest(result) == result_digest(batch)
    emit(
        f"final-day fold (day {final_day}, {len(final_events)} deltas) over "
        f"{len(batches)} recorded days; batch-identical result "
        f"({result.funnel.sacrificial_total} sacrificial)"
    )
