"""Experiment F6 — Figure 6: time-to-exploit CDFs.

Days from sacrificial-nameserver creation to hijacker registration, as
CDFs over nameservers and over their delegated domains. Paper: 50% of
vulnerable domains hijacked within ~5 days and >70% within a month,
with the domain CDF strictly above the nameserver CDF (selectivity).
"""

from conftest import emit

from repro.analysis.report import render_figure6
from repro.analysis.timing import domain_delays, nameserver_delays, timing_summary


def test_bench_figure6(benchmark, bundle):
    def compute():
        return nameserver_delays(bundle.study), domain_delays(bundle.study)

    ns, dom = benchmark(compute)
    assert ns and dom
    summary = timing_summary(bundle.study)
    assert summary["domains_within_7_days"] > summary["ns_within_7_days"]
    emit(render_figure6(bundle.study))
