"""Experiment S-DEF — defensive registrations (footnote 11), at scale.

The paper defensively registered the sacrificial domain protecting a
hijackable .edu name. This sweep generalizes the tactic: register the
highest-value currently-hijackable sacrificial domains and report the
coverage and cost of keeping them off the market.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.api import reproduce
from repro.experiment.defensive import DefensiveSweep


def test_bench_defensive(benchmark):
    bundle = reproduce(seed=911, scale=0.25, use_cache=False)
    sweep = DefensiveSweep(bundle.world, bundle.study)
    targets = benchmark.pedantic(sweep.enumerate_targets, rounds=3, iterations=1)
    assert targets
    report = sweep.execute(budget=15)
    assert report.registered
    emit(format_table(
        ["measure", "value"],
        [
            ("hijackable sacrificial domains", report.targets_considered),
            ("defensively registered (budget 15)", len(report.registered)),
            ("domains protected", len(report.protected_domains)),
            ("restricted-TLD targets covered",
             sum(1 for t in report.registered if t.reaches_restricted_tld)),
            ("first-year cost", f"${report.cost_usd:,.0f}"),
            ("cost per protected domain",
             f"${report.cost_per_protected_domain():,.2f}"),
        ],
        title="Defensive registration sweep (footnote 11, 1:400 world)",
    ))
