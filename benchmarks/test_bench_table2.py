"""Experiment T2 — Table 2: hijackable renaming idioms.

Regenerates the random-name idiom table. Paper: 180,842 NS / 512,715
domains, dominated by GoDaddy's PLEASEDROPTHISHOST and DROPTHISHOST and
Enom's random-suffix scheme.
"""

from conftest import emit

from repro.analysis.report import render_table2
from repro.analysis.tables import table2


def test_bench_table2(benchmark, bundle):
    rows, total = benchmark(table2, bundle.study)
    assert total.nameservers > 0
    godaddy = sum(r.nameservers for r in rows if r.registrar == "GoDaddy")
    assert godaddy > total.nameservers * 0.45
    emit(render_table2(bundle.study))
