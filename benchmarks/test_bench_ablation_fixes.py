"""Ablation A-FIX — the §7.3 fixes, measured.

Runs counterfactual worlds in which a robust fix had always been in
place and compares exposure against observed practice:

* reserved-TLD renaming (.invalid) — zero hijackable names;
* ubiquitous sink domains — zero hijackable names while sinks are held;
* observed practice — the paper's half-million-domain exposure.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.study import StudyAnalysis
from repro.analysis.tables import table3
from repro.detection.pipeline import DetectionPipeline
from repro.ecosystem.counterfactual import all_sinks_scenario, invalid_fix_scenario
from repro.ecosystem.world import World


def run_scenario(config):
    world = World(config).run()
    pipeline = DetectionPipeline(
        world.zonedb, world.whois, mine_patterns=False
    ).run()
    study = StudyAnalysis(pipeline, world.zonedb, world.whois)
    summary = table3(study)
    hijackable_truth = sum(1 for r in world.log.renames if r.hijackable)
    return {
        "renames": len(world.log.renames),
        "hijackable renames (truth)": hijackable_truth,
        "hijackable NS (detected)": summary.hijackable_ns,
        "hijacked NS": summary.hijacked_ns,
        "hijackable domains": summary.hijackable_domains,
        "hijacked domains": summary.hijacked_domains,
    }


def test_bench_ablation_fixes(benchmark, bundle):
    def run_counterfactuals():
        return {
            "invalid fix": run_scenario(invalid_fix_scenario(scale=0.1)),
            "sink fix": run_scenario(all_sinks_scenario(scale=0.1)),
        }

    outcomes = benchmark.pedantic(run_counterfactuals, rounds=2, iterations=1)
    baseline = table3(bundle.study)
    for name, stats in outcomes.items():
        assert stats["hijackable renames (truth)"] == 0, name
        assert stats["hijacked domains"] == 0, name
    rows = [
        ("observed practice (1:100)", baseline.hijackable_ns,
         baseline.hijacked_ns, baseline.hijackable_domains,
         baseline.hijacked_domains),
    ]
    for name, stats in outcomes.items():
        rows.append(
            (name + " (1:1000)", stats["hijackable NS (detected)"],
             stats["hijacked NS"], stats["hijackable domains"],
             stats["hijacked domains"])
        )
    emit(format_table(
        ["scenario", "hijackable NS", "hijacked NS",
         "hijackable domains", "hijacked domains"],
        rows,
        title="Ablation: §7.3 fixes vs observed practice",
    ))
