"""Experiment T4 — Table 4: top hijackers by controlling nameserver.

Groups hijacked sacrificial domains by the registered domain of the
nameservers the hijacker installed. Paper's top five: mpower.nl,
protectdelegation.*, yandex.net, phonesear.ch, dnspanel.com.
"""

from conftest import emit

from repro.analysis.actors import hijacker_rows
from repro.analysis.report import render_table4


def test_bench_table4(benchmark, bundle):
    rows = benchmark(hijacker_rows, bundle.study, top=5)
    assert rows
    names = {r.controlling_domain for r in rows}
    assert "mpower.nl" in names
    emit(render_table4(bundle.study))
