"""Experiment S-PIPE — the §3 methodology funnel.

Measures the full detection pipeline (candidate construction, test-NS
removal, pattern sweep, single-repository filter, history matching)
over the nine-year zone database, and prints the stage funnel — the
reproduction of the paper's 20M → 312,328 → 202,624 numbers at
simulation scale.
"""

from conftest import emit

from repro.analysis.report import render_funnel
from repro.detection.pipeline import DetectionPipeline


def test_bench_pipeline(benchmark, bundle):
    def run_pipeline():
        return DetectionPipeline(
            bundle.world.zonedb, bundle.world.whois, mine_patterns=False
        ).run()

    result = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    assert result.funnel.sacrificial_total > 0
    truth = {r.new_name for r in bundle.world.log.renames}
    detected = {s.name for s in result.sacrificial}
    assert truth == detected  # exact ground-truth parity
    emit(render_funnel(result))
