"""Ablation A-112 — the §7.3 AS112 residual risk, measured.

GoDaddy's EMPTY.AS112.ARPA idiom makes sacrificial names unregisterable,
but the anycast namespace introduces a new exposure: a rogue AS112 node
hijacks every protected domain *within its catchment*. The paper's
suggested mitigation — signing the zone — neutralizes it. Both halves
are demonstrated here.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiment.as112 import As112Experiment


def test_bench_as112(benchmark, bundle):
    experiment = As112Experiment(bundle.world, bundle.study)
    report = benchmark.pedantic(experiment.run, rounds=2, iterations=1)
    assert report.regional_hijack_works
    assert report.dnssec_mitigates
    emit(format_table(
        ["measure", "count"],
        [
            ("domains on empty.as112.arpa names (sampled)",
             len(report.protected_domains)),
            ("hijacked inside rogue node's catchment",
             len(report.hijacked_in_catchment)),
            ("answered outside the catchment", len(report.unaffected_outside)),
            ("hijacked once the zone is DNSSEC-signed",
             len(report.hijacked_with_dnssec)),
        ],
        title="AS112 anycast residual risk (§7.3 footnote 15)",
    ))
