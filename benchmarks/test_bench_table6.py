"""Experiment T6 — Table 6: post-remediation idiom adoption.

Counts sacrificial nameservers created under the new non-hijackable
idioms (GoDaddy's EMPTY.AS112.ARPA, Internet.bs's NOTAPLACETO.BE,
Enom's DELETE-REGISTRATION.COM) and the domains they protect. Paper:
15,010 NS protecting 31,201 domains as of September 2021.
"""

from conftest import emit

from repro.analysis.remediation import table6
from repro.analysis.report import render_table6


def test_bench_table6(benchmark, bundle):
    rows, total = benchmark(table6, bundle.study)
    assert total.nameservers > 0
    assert rows[0].registrar == "GoDaddy"
    emit(render_table6(bundle.study))
