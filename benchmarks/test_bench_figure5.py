"""Experiment F5 — Figure 5: hijack value vs delegated domains.

One point per hijackable sacrificial nameserver: hijack value (total
domain-days of delegation) against number of delegated domains, split
by hijacked/not. Paper: hijackers registered most of the nameservers at
the high-value, high-delegation end of the scatter.
"""

from conftest import emit

from repro.analysis.desirability import selectivity_summary, value_points
from repro.analysis.report import render_figure5


def test_bench_figure5(benchmark, bundle):
    points = benchmark(value_points, bundle.study)
    summary = selectivity_summary(points)
    assert summary["top_decile_hijacked_fraction"] > \
        3 * summary["overall_hijacked_fraction"]
    emit(render_figure5(bundle.study))
