"""Shared benchmark fixtures.

Every benchmark runs against the canonical full-scale world, built once
per process. Benchmarks measure the *analysis* cost of regenerating each
paper artifact and print the artifact itself, so running

    pytest benchmarks/ --benchmark-only -s

regenerates every table and figure of the paper.
"""

from __future__ import annotations

import pytest

from repro.api import ReproBundle, reproduce


@pytest.fixture(scope="session")
def bundle() -> ReproBundle:
    """The canonical full-scale reproduction bundle."""
    return reproduce(scale=1.0)


def emit(section: str) -> None:
    """Print one rendered artifact beneath the benchmark output."""
    print()
    print(section)


@pytest.fixture(scope="session")
def experiment_bundle() -> ReproBundle:
    """A private world for the controlled experiment.

    The §6.1 protocol mutates registry state, so it must not touch the
    shared full-scale bundle other benchmarks depend on.
    """
    return reproduce(seed=1759, scale=0.25, use_cache=False)
