"""Overhead benchmark: the fault layer must be free when switched off.

Two contracts are enforced (not just measured):

* ingesting a snapshot stream through a *disabled* SnapshotFaultInjector
  plus a default IngestPolicy costs <5% over raw ingestion;
* resolving with a RetryPolicy attached costs <5% over resolving with
  no policy when every server answers on the first try.

Timing uses a best-of-N loop rather than a mean, so background noise
inflates neither side of the ratio.
"""

from __future__ import annotations

import time

from repro.dnscore.records import RRType
from repro.faults import FaultConfig, RetryPolicy, SnapshotFaultInjector
from repro.resolver.resolver import IterativeResolver
from repro.resolver.server import AnsweringBehavior
from repro.zonedb.database import IngestPolicy, ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot

OVERHEAD_LIMIT = 1.05
ROUNDS = 7


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _snapshot_stream(days: int = 52, domains: int = 400) -> list[ZoneSnapshot]:
    snapshots = []
    for day in range(days):
        delegations = {
            f"domain{i}.biz": frozenset(
                {f"ns{i % 20}.host{i % 7}.com", f"ns{(i + 1) % 20}.host{i % 7}.com"}
            )
            for i in range(domains)
            # Churn a tenth of the zone every week.
            if (i + day) % 10 != 0
        }
        snapshots.append(ZoneSnapshot(day=day * 7, tld="biz", delegations=delegations))
    return snapshots


def test_bench_disabled_fault_layer_ingest_overhead(benchmark):
    snapshots = _snapshot_stream()

    def ingest_raw():
        db = ZoneDatabase()
        for snapshot in snapshots:
            db.ingest_snapshot(snapshot)
        db.finalize_pending()
        return db

    def ingest_through_disabled_layer():
        injector = SnapshotFaultInjector(FaultConfig.off())
        db = ZoneDatabase(ingest_policy=IngestPolicy())
        for snapshot in injector.degrade(snapshots):
            db.ingest_snapshot(snapshot)
        db.finalize_pending()
        return db

    raw = _best_of(ingest_raw)
    layered = _best_of(ingest_through_disabled_layer)
    ratio = layered / raw
    print(f"\ningest: raw={raw * 1e3:.1f}ms layered={layered * 1e3:.1f}ms "
          f"ratio={ratio:.3f}")
    assert ratio < OVERHEAD_LIMIT

    db = benchmark.pedantic(ingest_through_disabled_layer, rounds=3, iterations=1)
    assert db.nameserver_count() > 0


def test_bench_retry_policy_resolution_overhead(benchmark):
    db = ZoneDatabase(["com"])
    db.set_delegation(0, "foo.com", ["ns1.foo.com"])
    db.set_glue(0, "ns1.foo.com")
    names = [f"site{i}.com" for i in range(200)]
    behavior = AnsweringBehavior()
    for name in names:
        db.set_delegation(0, name, ["ns1.foo.com"])
        behavior.add_record(name, RRType.A, "192.0.2.80")

    plain = IterativeResolver(db)
    retrying = IterativeResolver(db, retry_policy=RetryPolicy(max_retries=3))
    for resolver in (plain, retrying):
        resolver.attach_server("ns1.foo.com", behavior)

    def resolve_all(resolver):
        def run():
            for name in names:
                assert resolver.resolve(name, day=5).ok
        return run

    raw = _best_of(resolve_all(plain))
    layered = _best_of(resolve_all(retrying))
    ratio = layered / raw
    print(f"\nresolve: raw={raw * 1e3:.1f}ms layered={layered * 1e3:.1f}ms "
          f"ratio={ratio:.3f}")
    assert ratio < OVERHEAD_LIMIT

    benchmark.pedantic(resolve_all(retrying), rounds=3, iterations=1)
