"""Experiment F4 — Figure 4: new hijacked domains per month.

The monthly series of domains newly hijacked. Paper: no downward trend,
bursty activity across the whole window — as long as domains have been
at risk, hijackers have exploited them.
"""

from conftest import emit

from repro.analysis.exposure import new_hijackable_per_month
from repro.analysis.hijacks import burstiness, new_hijacked_per_month
from repro.analysis.report import render_figure4


def test_bench_figure4(benchmark, bundle):
    series = benchmark(new_hijacked_per_month, bundle.study)
    assert burstiness(series) > burstiness(new_hijackable_per_month(bundle.study))
    emit(render_figure4(bundle.study))
