"""Ablation A-CONC — dependency concentration (§7.3's sink warning).

Measures how unequally resolution dependency is distributed across
provider domains, and the single-registration blast radius of the
largest concentrations — the quantitative form of the paper's warning
that sink domains concentrate dangling delegations.
"""

from conftest import emit

from repro.analysis.concentration import (
    concentration_report,
    single_registration_blast_radius,
)
from repro.analysis.report import format_table


def test_bench_concentration(benchmark, bundle):
    zonedb = bundle.world.zonedb
    day = bundle.study.config.study_end - 1
    report = benchmark.pedantic(
        concentration_report, args=(zonedb,), kwargs={"day": day},
        rounds=2, iterations=1,
    )
    assert report.gini > 0.5  # dependency is heavily concentrated
    rows = [
        (r.provider_domain, r.dependent_domains, r.nameserver_names,
         single_registration_blast_radius(zonedb, r.provider_domain, day=day))
        for r in report.top(8)
    ]
    emit(format_table(
        ["provider domain", "dependent domains", "NS names", "blast radius"],
        rows,
        title=(
            f"Dependency concentration at study end "
            f"(gini={report.gini:.2f}, top-10 share={report.top10_share:.0%})"
        ),
    ))
