"""Experiment T5 — Table 5: remediation vs the organic baseline.

Compares the vulnerable/hijacked population at notification (Sep 2020)
and five months later (Feb 2021) against the same window a year earlier.
Paper: nameserver remediation ran ~2.4x organic (driven by GoDaddy's
re-renames); domain-level impact stayed close to organic.
"""

from conftest import emit

from repro.analysis.remediation import table5
from repro.analysis.report import render_table5


def test_bench_table5(benchmark, bundle):
    delta = benchmark(table5, bundle.study)
    assert delta.ns_delta < 0
    assert abs(delta.ns_delta) > abs(delta.baseline_ns_delta)
    emit(render_table5(bundle.study))
