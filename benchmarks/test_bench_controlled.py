"""Experiment S-CE — the §6.1 controlled hijack experiment.

Registers a hijackable sacrificial domain defensively, observes victim
queries arriving (including cross-TLD .edu/.gov queries — the shared
EPP repository effect), demonstrates a hijack answered only inside the
research /24, and purges the logs.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.experiment.controlled import ControlledExperiment


def test_bench_controlled(benchmark, experiment_bundle):
    def run_once():
        experiment = ControlledExperiment(
            experiment_bundle.world, experiment_bundle.study
        )
        return experiment.run()

    # The experiment mutates registry state (a defensive registration),
    # so it runs exactly once on its own private world; the benchmarked
    # part is target selection, which is read-only.
    experiment = ControlledExperiment(
        experiment_bundle.world, experiment_bundle.study
    )
    benchmark.pedantic(experiment.pick_target, rounds=3, iterations=1)
    report = run_once()
    assert report.hijack_demonstrated
    assert report.logs_purged > 0
    emit(format_table(
        ["observation", "value"],
        [
            ("sacrificial domain", report.sacrificial_domain),
            ("victim domains delegated", len(report.delegated_domains)),
            ("restricted-TLD victims", len(report.restricted_tld_domains)),
            ("queries observed", report.queries_observed),
            ("restricted-TLD queries", report.restricted_queries_observed),
            ("scoped hijack answer", ",".join(report.scoped_answer)),
            ("outside-scope status", report.outside_answer_status),
            ("query log records purged", report.logs_purged),
        ],
        title="Controlled experiment (§6.1)",
    ))
