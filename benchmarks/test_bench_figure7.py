"""Experiment F7 — Figure 7: hijackable vs hijacked durations.

CDFs of days-at-risk for never-hijacked and hijacked domains, plus
days-actually-hijacked. Paper: hijacked domains skew toward long
exposure (selection) and the hijacked-days CDF steps at the one- and
two-year registration anniversaries (hijackers stop renewing).
"""

from conftest import emit

from repro.analysis.duration import (
    duration_summary,
    hijackable_durations,
    hijacked_durations,
)
from repro.analysis.report import render_figure7


def test_bench_figure7(benchmark, bundle):
    def compute():
        never, hijacked = hijackable_durations(bundle.study)
        return never, hijacked, hijacked_durations(bundle.study)

    never, hijacked, taken = benchmark(compute)
    assert never and hijacked and taken
    summary = duration_summary(bundle.study)
    assert summary["never_week_fraction"] > summary["hijacked_week_fraction"]
    emit(render_figure7(bundle.study))
