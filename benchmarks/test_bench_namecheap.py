"""Experiment S-NC — the Namecheap accidental mass deletion (§4).

Replays the scaled event: a deletion request for the registrar's default
nameserver domain renames every default nameserver host, exposing the
entire client population at once; nearly all clients repair their
delegations within three days. Paper: 1.6M domains exposed, 51,699
still exposed after three days, 51 never fixed.
"""

from conftest import emit

from repro.analysis.report import format_table


def measure_event(world):
    nc = world.plan.namecheap
    accidental = [r for r in world.log.renames if r.accidental]
    sacrificial = {r.new_name for r in accidental}
    exposed = set()
    for record in accidental:
        exposed.update(record.linked_domains)

    def still_exposed(day):
        return sum(
            1 for domain in exposed
            if world.zonedb.nameservers_of(domain, day) & sacrificial
        )

    return {
        "renamed nameservers": len(accidental),
        "domains exposed": len(exposed),
        "still exposed after 3 days": still_exposed(nc.day + 4),
        "still exposed after 1 year": still_exposed(nc.day + 365),
        "never fixed (end of data)": still_exposed(world.config.end_day - 1),
    }


def test_bench_namecheap(benchmark, bundle):
    stats = benchmark(measure_event, bundle.world)
    assert stats["domains exposed"] > 1000
    assert stats["still exposed after 3 days"] < stats["domains exposed"] * 0.1
    assert stats["never fixed (end of data)"] <= 5
    emit(format_table(
        ["measure", "count"], list(stats.items()),
        title="Namecheap accidental deletion (§4, scaled 1:100)",
    ))
