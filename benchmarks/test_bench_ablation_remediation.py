"""Ablation A-REM — what did the notification actually buy?

Re-runs the world with the September 2020 outreach removed (no idiom
switches, no re-rename campaigns) and compares the Table 5 window
against the observed world. The delta isolates the causal effect the
paper could only estimate with the year-earlier organic baseline.
"""

from conftest import emit

from repro.analysis.remediation import table5
from repro.analysis.report import format_table
from repro.analysis.study import StudyAnalysis
from repro.detection.pipeline import DetectionPipeline
from repro.ecosystem.counterfactual import no_remediation_scenario
from repro.ecosystem.world import World


def test_bench_ablation_remediation(benchmark, bundle):
    def run_without_notification():
        world = World(no_remediation_scenario(scale=0.25)).run()
        pipeline = DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False
        ).run()
        study = StudyAnalysis(pipeline, world.zonedb, world.whois)
        return world, table5(study)

    world, counterfactual = benchmark.pedantic(
        run_without_notification, rounds=1, iterations=1
    )
    observed = table5(bundle.study)
    # Without the notification, hijackable renames continue to the end.
    late = [
        r for r in world.log.renames
        if r.day > world.config.notification_day + 60 and r.hijackable
    ]
    assert late, "hijackable renames should continue without the outreach"
    # And the remediation-window improvement matches organic churn.
    cf_gain = abs(counterfactual.ns_delta) / max(
        1, abs(counterfactual.baseline_ns_delta)
    )
    observed_gain = abs(observed.ns_delta) / max(
        1, abs(observed.baseline_ns_delta)
    )
    assert observed_gain > cf_gain
    emit(format_table(
        ["world", "vuln NS delta", "organic baseline", "gain over organic"],
        [
            ("observed (notification happened)", observed.ns_delta,
             observed.baseline_ns_delta, f"{observed_gain:.1f}x"),
            ("counterfactual (no notification, 1:400)", counterfactual.ns_delta,
             counterfactual.baseline_ns_delta, f"{cf_gain:.1f}x"),
        ],
        title="Ablation: the notification's causal effect on remediation",
    ))
