"""Experiment S-NAT — §5.6: the nature of hijacked domains.

Splits the currently-hijackable population into fully exposed domains
(no working nameserver left — the moribund bulk) and partially exposed
ones (a working alternate nameserver hides the risk from the owner).
Paper: 3,520 partially-hijackable domains, 1,105 of them already using
a hijacked nameserver; sensitive names (.edu/.gov, brand-protection
registrations) appear in both classes.
"""

from conftest import emit

from repro.analysis.nature import classify_exposure, nature_rows
from repro.analysis.report import format_table


def test_bench_nature(benchmark, bundle):
    day = bundle.study.config.study_end - 1
    nature = benchmark(classify_exposure, bundle.study, day)
    assert nature.total_exposed > 0
    assert nature.fully_exposed > nature.partially_exposed
    emit(format_table(
        ["measure", "count"], nature_rows(nature),
        title="Nature of currently-hijackable domains (§5.6)",
    ))
