"""Experiment S-MON — §6.2: what hijacked domains are used for.

Probes a sample of currently-hijacked domains through the resolver
against each operator's serving behaviour and classifies the answers —
the programmatic version of the paper's manual visits, plus the
Wayback-style retrospective sample.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.api import reproduce
from repro.experiment.monetization import MonetizationProbe


def test_bench_monetization(benchmark):
    bundle = reproduce(seed=321, scale=0.25, use_cache=False)
    probe = MonetizationProbe(bundle.world, bundle.study)
    report = benchmark.pedantic(
        probe.run, kwargs={"sample": 100, "seed": 4}, rounds=2, iterations=1
    )
    assert report.parking_fraction > 0.5
    assert report.retrospective_stable()
    rows = [(label, count) for label, count in report.classes.most_common()]
    rows.append(("(retrospective samples stable)", report.retrospective_stable()))
    emit(format_table(
        ["classification", "count"], rows,
        title=(
            f"Monetization of hijacked domains (§6.2): "
            f"{report.sampled} probed at study end"
        ),
    ))
