"""Experiment T1 — Table 1: non-hijackable renaming idioms.

Regenerates the sink-domain idiom table (registrar, sacrificial
nameserver count, affected domains). Paper: 21,782 NS / 228,698 domains
across six sink idioms, Network Solutions' LAMEDELEGATION.ORG carrying
by far the most domains per nameserver.
"""

from conftest import emit

from repro.analysis.report import render_table1
from repro.analysis.tables import table1


def test_bench_table1(benchmark, bundle):
    rows, total = benchmark(table1, bundle.study)
    assert total.nameservers > 0
    assert any(row.idiom == "LAMEDELEGATION.ORG" for row in rows)
    emit(render_table1(bundle.study))
