"""The delta change log: format, durability, and watermark contracts."""

from __future__ import annotations

import json

import pytest

from repro.store.changelog import (
    DELEGATION_ADD,
    DELEGATION_REMOVE,
    DOMAIN_APPEAR,
    GLUE_ADD,
    ChangeLog,
    ChangelogCorruption,
    DeltaEvent,
    group_batches,
)


def _add(day: int, domain: str, ns: str) -> DeltaEvent:
    return DeltaEvent(kind=DELEGATION_ADD, day=day, name=domain, ns=ns)


class TestDeltaEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown delta kind"):
            DeltaEvent(kind="no-such-kind", day=0, name="a.biz")

    def test_pair_kinds_require_nameserver(self):
        with pytest.raises(ValueError, match="requires a nameserver"):
            DeltaEvent(kind=DELEGATION_REMOVE, day=0, name="a.biz")

    def test_payload_round_trip(self):
        for event in (
            _add(3, "a.biz", "ns1.x.com"),
            DeltaEvent(kind=GLUE_ADD, day=5, name="ns1.x.biz"),
            DeltaEvent(kind=DOMAIN_APPEAR, day=7, name="b.biz"),
        ):
            assert DeltaEvent.from_payload(event.to_payload()) == event


class TestGroupBatches:
    def test_groups_by_batch_day(self):
        stream = [
            (1, _add(1, "a.biz", "ns1.x.com")),
            (1, _add(1, "b.biz", "ns1.x.com")),
            (4, _add(3, "c.biz", "ns2.x.com")),
        ]
        batches = group_batches(stream)
        assert [day for day, _ in batches] == [1, 4]
        assert [len(events) for _, events in batches] == [2, 1]

    def test_rejects_decreasing_batch_days(self):
        stream = [
            (4, _add(4, "a.biz", "ns1.x.com")),
            (1, _add(1, "b.biz", "ns1.x.com")),
        ]
        with pytest.raises(ValueError, match="out of order"):
            group_batches(stream)


class TestChangeLogRoundTrip:
    def test_create_record_open_round_trip(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.create(path)
        events = [
            _add(1, "a.biz", "ns1.x.com"),
            DeltaEvent(kind=DOMAIN_APPEAR, day=1, name="a.biz"),
            _add(2, "b.biz", "ns2.x.com"),
        ]
        log.record(1, events[0])
        log.record(1, events[1])
        log.record(2, events[2])

        reopened = ChangeLog.open(path)
        assert len(reopened) == 3
        assert reopened.deltas == [(1, events[0]), (1, events[1]), (2, events[2])]
        assert reopened.last_batch_day == 2

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        ChangeLog.create(path)
        with pytest.raises(FileExistsError):
            ChangeLog.create(path)

    def test_attach_creates_then_opens(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.attach(path)
        log.record(1, _add(1, "a.biz", "ns1.x.com"))
        assert len(ChangeLog.attach(path)) == 1

    def test_append_only_batch_days(self, tmp_path):
        log = ChangeLog.create(tmp_path / "changes.jsonl")
        log.record(5, _add(5, "a.biz", "ns1.x.com"))
        with pytest.raises(ValueError, match="append-only"):
            log.record(4, _add(4, "b.biz", "ns1.x.com"))

    def test_reopened_log_appends_with_continuing_seq(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.create(path)
        log.record(1, _add(1, "a.biz", "ns1.x.com"))
        reopened = ChangeLog.open(path)
        reopened.record(2, _add(2, "b.biz", "ns1.x.com"))
        assert len(ChangeLog.open(path)) == 2


class TestTornTailRecovery:
    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.create(path)
        log.record(1, _add(1, "a.biz", "ns1.x.com"))
        intact = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"type": "delta", "batch_')  # killed mid-append

        recovered = ChangeLog.open(path)
        assert len(recovered) == 1
        assert path.read_bytes() == intact  # verified lines kept verbatim
        recovered.record(2, _add(2, "b.biz", "ns1.x.com"))
        assert len(ChangeLog.open(path)) == 2

    def test_damage_before_tail_raises(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.create(path)
        log.record(1, _add(1, "a.biz", "ns1.x.com"))
        log.record(2, _add(2, "b.biz", "ns1.x.com"))
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("a.biz", "z.biz")  # checksum now wrong
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ChangelogCorruption, match="damaged, not torn"):
            ChangeLog.open(path)

    def test_missing_log_start_raises(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        path.write_text(json.dumps({"type": "delta"}) + "\n")
        with pytest.raises(ChangelogCorruption, match="log-start"):
            ChangeLog.open(path)

    def test_unknown_format_raises(self, tmp_path):
        import hashlib

        from repro.store.atomic import canonical_json

        path = tmp_path / "changes.jsonl"
        body = {"type": "log-start", "format": "riskybiz-changelog/999", "seq": 0}
        document = dict(body)
        document["checksum"] = hashlib.sha256(
            canonical_json(body).encode("utf-8")
        ).hexdigest()
        path.write_text(json.dumps(document, sort_keys=True) + "\n")
        with pytest.raises(ChangelogCorruption, match="unknown format"):
            ChangeLog.open(path)


class TestReplayQueries:
    def _log(self, tmp_path) -> ChangeLog:
        log = ChangeLog.create(tmp_path / "changes.jsonl")
        log.record_batch(1, [_add(1, "a.biz", "ns1.x.com")])
        log.record_batch(3, [
            _add(3, "b.biz", "ns1.x.com"),
            _add(3, "c.biz", "ns2.x.com"),
        ])
        log.record_batch(6, [_add(6, "d.biz", "ns2.x.com")])
        return log

    def test_events_since_is_exclusive(self, tmp_path):
        log = self._log(tmp_path)
        assert len(log.events_since(None)) == 4
        assert [d for d, _ in log.events_since(1)] == [3, 3, 6]
        assert log.events_since(6) == []

    def test_batches_window_is_since_exclusive_until_inclusive(self, tmp_path):
        log = self._log(tmp_path)
        batches = log.batches(since=1, until=3)
        assert [day for day, _ in batches] == [3]
        assert len(batches[0][1]) == 2
        assert [day for day, _ in log.batches()] == [1, 3, 6]


class TestWatermarks:
    def test_unknown_consumer_has_no_watermark(self, tmp_path):
        log = ChangeLog.create(tmp_path / "changes.jsonl")
        assert log.watermark("engine") is None

    def test_commit_and_read_back_across_reopen(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.create(path)
        log.commit_watermark("engine", 5)
        log.commit_watermark("mirror", 2)
        assert log.watermark("engine") == 5
        reopened = ChangeLog.open(path)
        assert reopened.watermark("engine") == 5
        assert reopened.watermark("mirror") == 2

    def test_watermark_never_moves_backwards(self, tmp_path):
        log = ChangeLog.create(tmp_path / "changes.jsonl")
        log.commit_watermark("engine", 5)
        log.commit_watermark("engine", 5)  # re-commit of the same day is fine
        with pytest.raises(ValueError, match="cannot move backwards"):
            log.commit_watermark("engine", 4)

    def test_corrupt_sidecar_starts_clean(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        log = ChangeLog.create(path)
        log.commit_watermark("engine", 5)
        sidecar = path.with_name(path.name + ".watermarks.json")
        sidecar.write_text("not json {")
        assert log.watermark("engine") is None
        log.commit_watermark("engine", 1)  # clean slate accepts any day
        assert log.watermark("engine") == 1
