"""Tests for the registry expiration pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.epp.expiry import (
    ExpiryEngine,
    ExpiryPhase,
    ExpiryPolicy,
    PHASE_ORDER,
)


@pytest.fixture()
def engine():
    return ExpiryEngine(ExpiryPolicy(
        auto_renew_days=45, redemption_days=30, pending_delete_days=5,
    ))


class TestPolicy:
    def test_phase_starts(self):
        policy = ExpiryPolicy(10, 20, 5)
        starts = policy.phase_starts(100)
        assert starts[ExpiryPhase.AUTO_RENEW] == 100
        assert starts[ExpiryPhase.REDEMPTION] == 110
        assert starts[ExpiryPhase.PENDING_DELETE] == 130
        assert starts[ExpiryPhase.PURGED] == 135


class TestPipeline:
    def test_active_before_expiry(self, engine):
        engine.schedule("foo.com", 100)
        assert engine.advance(99) == []
        assert engine.phase_of("foo.com") is ExpiryPhase.ACTIVE

    def test_full_progression(self, engine):
        engine.schedule("foo.com", 100)
        transitions = engine.advance(200)
        assert [t.phase for t in transitions] == list(PHASE_ORDER)
        assert [t.day for t in transitions] == [100, 145, 175, 180]
        assert engine.phase_of("foo.com") is ExpiryPhase.ACTIVE  # untracked
        assert engine.tracked_count() == 0

    def test_incremental_advance(self, engine):
        engine.schedule("foo.com", 100)
        assert [t.phase for t in engine.advance(100)] == [ExpiryPhase.AUTO_RENEW]
        assert engine.advance(100) == []  # idempotent
        assert [t.phase for t in engine.advance(146)] == [ExpiryPhase.REDEMPTION]
        assert engine.is_recoverable("foo.com")
        rest = engine.advance(500)
        assert [t.phase for t in rest] == [
            ExpiryPhase.PENDING_DELETE, ExpiryPhase.PURGED,
        ]

    def test_recoverability_window(self, engine):
        engine.schedule("foo.com", 100)
        engine.advance(146)
        assert engine.is_recoverable("foo.com")
        engine.advance(176)
        assert not engine.is_recoverable("foo.com")

    def test_multiple_domains_ordered(self, engine):
        engine.schedule("a.com", 100)
        engine.schedule("b.com", 50)
        days = [t.day for t in engine.advance(300)]
        assert days == sorted(days)


class TestRenewAndCancel:
    def test_renew_resets_pipeline(self, engine):
        engine.schedule("foo.com", 100)
        engine.advance(120)  # in auto-renew grace
        engine.renew("foo.com", 465)
        assert engine.phase_of("foo.com") is ExpiryPhase.ACTIVE
        assert engine.advance(200) == []  # old events are stale
        transitions = engine.advance(600)
        assert transitions[0].day == 465

    def test_restore_from_redemption(self, engine):
        """RFC 3915's whole point: redemption is recoverable."""
        engine.schedule("foo.com", 100)
        engine.advance(150)
        assert engine.phase_of("foo.com") is ExpiryPhase.REDEMPTION
        engine.renew("foo.com", 510)
        assert engine.phase_of("foo.com") is ExpiryPhase.ACTIVE
        assert engine.advance(400) == []

    def test_cancel_stops_everything(self, engine):
        engine.schedule("foo.com", 100)
        engine.cancel("foo.com")
        assert engine.advance(500) == []
        assert engine.tracked_count() == 0

    def test_next_transition_day_skips_stale(self, engine):
        engine.schedule("foo.com", 100)
        engine.renew("foo.com", 465)
        assert engine.next_transition_day() == 465

    def test_empty_engine(self, engine):
        assert engine.next_transition_day() is None
        assert engine.advance(10 ** 6) == []


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=10),
    )
    def test_phases_always_in_order(self, expiry, auto, redemption, pending):
        engine = ExpiryEngine(ExpiryPolicy(auto, redemption, pending))
        engine.schedule("x.com", expiry)
        transitions = engine.advance(expiry + auto + redemption + pending + 1)
        assert [t.phase for t in transitions] == list(PHASE_ORDER)
        days = [t.day for t in transitions]
        assert days == sorted(days)

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=10))
    def test_renew_chain_only_last_counts(self, expiries):
        engine = ExpiryEngine()
        for expiry in expiries:
            engine.schedule("x.com", expiry)
        transitions = engine.advance(2000)
        purges = [t for t in transitions if t.phase is ExpiryPhase.PURGED]
        assert len(purges) == 1
        assert purges[0].day == expiries[-1] + 80  # 45 + 30 + 5
