"""Property test: random histories fold to batch-identical results.

Hypothesis generates arbitrary delegation/glue histories, records them
through the zone-database delta write path, and asserts the incremental
engine's core invariant from every angle:

* folding the recorded batches day by day produces a result digest
  bit-identical to a fresh batch pipeline run, on both engine store
  backends;
* the invariant holds at *every* prefix of the stream, not just the
  end (a replica database rebuilt from the delta prefix is the batch
  referee);
* under a seeded chaos monkey killing the journaled incremental runner
  at arbitrary fold/append boundaries (including torn journal writes),
  resume-at-watermark still converges to the exact batch digest.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.incremental import IncrementalDetectionEngine
from repro.detection.pipeline import DetectionPipeline
from repro.faults.process import ChaosKill, ChaosMonkey, ProcessChaosConfig
from repro.runner.execution import result_digest, run_incremental_detection
from repro.runner.journal import RunJournal
from repro.store.dataset import DeltaView
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase

_domains = st.sampled_from([f"dom{i}.biz" for i in range(4)])
_nameservers = st.sampled_from(
    [f"ns{i}.host{j}.biz" for i in range(2) for j in range(2)]
    + ["dropme123456.park.biz"]  # pattern-idiom shaped, to touch that stage
)

_ops = st.one_of(
    st.tuples(
        st.just("set"), _domains,
        st.frozensets(_nameservers, min_size=1, max_size=2),
    ),
    st.tuples(st.just("remove"), _domains, st.none()),
    st.tuples(st.just("glue-add"), _nameservers, st.none()),
    st.tuples(st.just("glue-remove"), _nameservers, st.none()),
)

_histories = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60), _ops),
    min_size=1, max_size=20,
)


def _build(history) -> ZoneDatabase:
    zonedb = ZoneDatabase()
    zonedb.cover("biz")
    # Stable sort by day: same-day operations keep generation order, so
    # the recorded delta stream is a pure function of the history.
    for day, (kind, name, nameservers) in sorted(history, key=lambda t: t[0]):
        if kind == "set":
            zonedb.set_delegation(day, name, sorted(nameservers))
        elif kind == "remove":
            zonedb.remove_delegation(day, name)
        elif kind == "glue-add":
            zonedb.set_glue(day, name)
        else:
            zonedb.remove_glue(day, name)
    return zonedb


def _engine(whois, backend: str) -> IncrementalDetectionEngine:
    return IncrementalDetectionEngine(
        whois,
        backend=backend,
        store_path=":memory:" if backend == "sqlite" else None,
    )


@settings(max_examples=25, deadline=None)
@given(history=_histories)
def test_day_by_day_fold_is_batch_identical(history):
    zonedb = _build(history)
    whois = WhoisArchive()
    batch = result_digest(DetectionPipeline(zonedb, whois).run())
    for backend in ("memory", "sqlite"):
        engine = _engine(whois, backend)
        for batch_day, events in DeltaView(zonedb).batches():
            engine.advance(batch_day, events)
        assert result_digest(engine.result()) == batch, backend


@settings(max_examples=20, deadline=None)
@given(history=_histories, cut=st.integers(min_value=0, max_value=1_000_000))
def test_every_stream_prefix_is_batch_identical(history, cut):
    zonedb = _build(history)
    whois = WhoisArchive()
    batches = DeltaView(zonedb).batches()
    cut_day = batches[cut % len(batches)][0]

    engine = _engine(whois, "memory")
    engine.advance_from(zonedb, until=cut_day)
    assert engine.watermark == cut_day

    replica = ZoneDatabase()
    for batch_day, event in zonedb.deltas_since(None):
        if batch_day <= cut_day:
            replica.apply_delta(event)
    batch = DetectionPipeline(replica, whois).run()
    assert result_digest(engine.result()) == result_digest(batch)


@settings(max_examples=10, deadline=None)
@given(history=_histories, chaos_seed=st.integers(min_value=0, max_value=2**16))
def test_chaos_kills_resume_at_watermark_to_batch_digest(history, chaos_seed):
    zonedb = _build(history)
    whois = WhoisArchive()
    batch = result_digest(DetectionPipeline(zonedb, whois).run())
    monkey = ChaosMonkey(
        ProcessChaosConfig(
            seed=chaos_seed,
            kill_worker_rate=0.4,
            kill_supervisor_rate=0.4,
            torn_write_rate=0.3,
            max_kills=3,
        )
    )
    with tempfile.TemporaryDirectory() as scratch:
        run_dir = Path(scratch) / "run"
        resume = None
        kills = 0
        while True:
            try:
                outcome = run_incremental_detection(
                    zonedb, whois, run_dir=run_dir,
                    chaos=monkey, resume=resume,
                )
                break
            except ChaosKill:
                kills += 1
                assert kills <= 50, "kill budget failed to terminate"
                resume = RunJournal.open(run_dir / "journal.jsonl").run_id
        assert outcome.result_digest == batch, (kills, chaos_seed)
