"""Tests for the dependency-concentration analysis."""

import pytest

from repro.analysis.concentration import (
    concentration_report,
    dependency_graph,
    single_registration_blast_radius,
    _gini,
)
from repro.zonedb.database import ZoneDatabase


@pytest.fixture()
def db():
    database = ZoneDatabase(["com", "org"])
    # Ten clients on one provider, one client on another, one self-hosted.
    for index in range(10):
        database.set_delegation(0, f"c{index}.com", ["ns1.bigsink.com"])
    database.set_delegation(0, "solo.com", ["ns1.tiny.org"])
    database.set_delegation(0, "selfy.com", ["ns1.selfy.com"])
    return database


class TestGraph:
    def test_edges_point_to_providers(self, db):
        graph = dependency_graph(db, day=1)
        assert graph.has_edge("c0.com", "bigsink.com")
        assert graph.has_edge("solo.com", "tiny.org")

    def test_self_hosting_excluded(self, db):
        graph = dependency_graph(db, day=1)
        assert "selfy.com" not in graph

    def test_edge_carries_nameservers(self, db):
        graph = dependency_graph(db, day=1)
        assert graph.edges["c0.com", "bigsink.com"]["nameservers"] == {
            "ns1.bigsink.com"
        }

    def test_day_scoped(self, db):
        db.remove_delegation(5, "c0.com")
        graph = dependency_graph(db, day=6)
        assert "c0.com" not in graph


class TestReport:
    def test_rows_ranked(self, db):
        report = concentration_report(db, day=1)
        assert report.rows[0].provider_domain == "bigsink.com"
        assert report.rows[0].dependent_domains == 10
        assert report.rows[1].dependent_domains == 1

    def test_top10_share(self, db):
        report = concentration_report(db, day=1)
        assert report.top10_share == 1.0

    def test_gini_concentrated(self, db):
        # Two providers with loads (10, 1): Gini = 0.409...
        report = concentration_report(db, day=1)
        assert report.gini == pytest.approx(0.409, abs=0.01)

    def test_gini_bounds(self):
        assert _gini([]) == 0.0
        assert _gini([5, 5, 5]) == pytest.approx(0.0)
        assert 0.0 < _gini([0, 0, 0, 100]) <= 1.0

    def test_largest_component(self, db):
        report = concentration_report(db, day=1)
        assert report.largest_component == 11  # bigsink + its 10 clients


class TestBlastRadius:
    def test_counts_dependents(self, db):
        assert single_registration_blast_radius(db, "bigsink.com", day=1) == 10
        assert single_registration_blast_radius(db, "tiny.org", day=1) == 1
        assert single_registration_blast_radius(db, "unknown.net", day=1) == 0

    def test_sink_concentration_in_world(self, default_bundle):
        """dummyns.com concentrated risk before its seizure (§7.3/§4)."""
        world = default_bundle.world
        seizure = next(
            e.day for e in world.log.sink_events
            if e.domain == "dummyns.com" and e.action == "seized"
        )
        radius = single_registration_blast_radius(
            world.zonedb, "dummyns.com", day=seizure - 1
        )
        assert radius > 0

    def test_world_concentration_report(self, tiny_bundle):
        zonedb = tiny_bundle.world.zonedb
        report = concentration_report(zonedb, day=1800)
        assert report.rows
        assert 0.0 <= report.gini <= 1.0
        # Professional providers dominate the top of the ranking.
        top_names = {row.provider_domain for row in report.top(5)}
        from repro.ecosystem.population import SAFE_PROVIDERS
        assert top_names & {provider for provider, _o in SAFE_PROVIDERS}
