"""Tests for the fault-injection subsystem and its consumers.

Covers the FaultConfig/RetryPolicy value types (including the scenario
JSON round-trip), the three injectors, the resolver's retry/timeout
semantics against flaky servers, and the detection pipeline's
stage-checkpoint resume.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.dnscore.records import RRType
from repro.faults import (
    FaultConfig,
    FlakyBehavior,
    RetryPolicy,
    SnapshotFaultInjector,
    WhoisFaultInjector,
)
from repro.faults.config import fault_config_from_dict, fault_config_to_dict
from repro.resolver.resolver import IterativeResolver, ResolutionStatus
from repro.resolver.server import (
    AnsweringBehavior,
    NameserverBehavior,
    SilentBehavior,
    TransientServerFailure,
)
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import IngestPolicy, ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot


class TestFaultConfig:
    def test_off_is_disabled(self):
        config = FaultConfig.off()
        assert not config.enabled
        assert not config.snapshot_faults_enabled
        assert not config.whois_faults_enabled
        assert not config.ns_faults_enabled

    def test_uniform_enables_every_plane(self):
        config = FaultConfig.uniform(0.1)
        assert config.enabled
        assert config.snapshot_faults_enabled
        assert config.whois_faults_enabled
        assert config.ns_faults_enabled
        assert config.gap_bridge_days > 0

    def test_uniform_overrides(self):
        config = FaultConfig.uniform(0.1, seed=9, gap_bridge_days=5)
        assert config.seed == 9
        assert config.gap_bridge_days == 5

    def test_dict_round_trip(self):
        config = FaultConfig.uniform(
            0.07, seed=3, retry=RetryPolicy(max_retries=4, base_timeout_ms=250)
        )
        assert fault_config_from_dict(fault_config_to_dict(config)) == config

    def test_from_none_is_disabled_default(self):
        assert fault_config_from_dict(None) == FaultConfig()

    def test_scenario_json_round_trip(self, tmp_path):
        from repro.ecosystem.config import tiny_scenario
        from repro.ecosystem.scenario_io import load_scenario, save_scenario

        config = replace(
            tiny_scenario(7),
            faults=FaultConfig.uniform(0.12, seed=21, strict=True),
        )
        path = save_scenario(config, tmp_path / "scenario.json")
        loaded = load_scenario(path)
        assert loaded.faults == config.faults
        assert loaded == config

    def test_old_scenario_files_load_without_faults_key(self, tmp_path):
        import json

        from repro.ecosystem.config import tiny_scenario
        from repro.ecosystem.scenario_io import (
            load_scenario,
            save_scenario,
            scenario_to_dict,
        )

        data = scenario_to_dict(tiny_scenario(7))
        del data["faults"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        assert load_scenario(path).faults == FaultConfig()


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            max_retries=4, base_timeout_ms=1000, backoff_factor=2.0,
            max_timeout_ms=5000,
        )
        assert [policy.timeout_for(k) for k in range(5)] == [
            1000, 2000, 4000, 5000, 5000,
        ]

    def test_attempts_counts_first_try(self):
        assert RetryPolicy(max_retries=2).attempts == 3
        assert RetryPolicy(max_retries=0).attempts == 1


def _snapshots(count: int = 10) -> list[ZoneSnapshot]:
    return [
        ZoneSnapshot(
            day=day * 7,
            tld="biz",
            delegations={
                f"domain{i}.biz": frozenset({f"ns{i}.host.com"}) for i in range(4)
            },
        )
        for day in range(count)
    ]


class TestSnapshotFaultInjector:
    def test_disabled_is_identity_without_draws(self):
        snapshots = _snapshots()
        injector = SnapshotFaultInjector(FaultConfig.off())
        out = injector.degrade(snapshots)
        assert out == snapshots
        assert injector.log.total_faults == 0
        # The drop stream was never consumed: its next draw equals a
        # fresh stream's first draw.
        from repro.faults.rng import stream_rng

        assert injector._drop_rng.random() == stream_rng(0, "snapshot.drop").random()

    def test_drop_rate_one_drops_everything(self):
        injector = SnapshotFaultInjector(FaultConfig(snapshot_drop_rate=1.0))
        assert injector.degrade(_snapshots()) == []
        assert len(injector.log.dropped) == 10

    def test_duplicate_rate_one_doubles_the_stream(self):
        injector = SnapshotFaultInjector(FaultConfig(snapshot_duplicate_rate=1.0))
        out = injector.degrade(_snapshots())
        assert len(out) == 20
        assert out[0] == out[1]

    def test_truncation_keeps_the_configured_fraction(self):
        injector = SnapshotFaultInjector(
            FaultConfig(snapshot_truncate_rate=1.0, truncate_keep_fraction=0.5)
        )
        out = injector.degrade(_snapshots())
        assert all(len(s.delegations) == 2 for s in out)
        assert len(injector.log.truncated) == 10

    def test_corruption_produces_invalid_names(self):
        injector = SnapshotFaultInjector(FaultConfig(record_corrupt_rate=1.0))
        out = injector.degrade(_snapshots(2))
        assert injector.log.corrupted
        from repro.dnscore.errors import NameError_
        from repro.dnscore.names import Name

        bad = injector.log.corrupted[0][2]
        with pytest.raises(NameError_):
            Name(bad)
        # Corrupt records are skipped and counted on ingest (lenient).
        db = ZoneDatabase()
        report = db.ingest_snapshot(out[0])
        assert report.corruption_detected
        assert report.records_skipped > 0

    def test_reordering_swaps_adjacent_deliveries(self):
        injector = SnapshotFaultInjector(FaultConfig(snapshot_reorder_rate=1.0))
        out = injector.degrade(_snapshots(4))
        days = [s.day for s in out]
        assert days == [7, 0, 21, 14]
        # Lenient ingestion skips the out-of-order deliveries.
        db = ZoneDatabase()
        for snapshot in out:
            db.ingest_snapshot(snapshot)
        rejected = [r for r in db.ingest_reports if not r.ingested]
        assert [r.reason for r in rejected] == ["out-of-order", "out-of-order"]


class TestWhoisFaultInjector:
    def _archive(self) -> WhoisArchive:
        archive = WhoisArchive()
        archive.record_registration("alpha.com", "godaddy", day=0)
        archive.record_registration("beta.com", "enom", day=10)
        archive.record_deletion("beta.com", day=50)
        archive.record_registration("gamma.com", "enom", day=20)
        archive.record_transfer("gamma.com", "godaddy", day=40)
        return archive

    def test_disabled_returns_the_input_archive(self):
        archive = self._archive()
        assert WhoisFaultInjector(FaultConfig.off()).degrade(archive) is archive

    def test_gap_rate_one_empties_the_archive(self):
        injector = WhoisFaultInjector(FaultConfig(whois_gap_rate=1.0))
        degraded = injector.degrade(self._archive())
        assert len(degraded) == 0
        assert sorted(injector.log.domains_dropped) == [
            "alpha.com", "beta.com", "gamma.com",
        ]

    def test_stale_records_never_see_deletion_or_transfers(self):
        injector = WhoisFaultInjector(FaultConfig(whois_stale_rate=1.0))
        degraded = injector.degrade(self._archive())
        beta = degraded.history("beta.com")[0]
        assert beta.deleted is None
        gamma = degraded.history("gamma.com")[0]
        assert gamma.transfers == []
        assert degraded.registrar_at("gamma.com", 60) == "enom"

    def test_degrading_copies_rather_than_aliases(self):
        archive = self._archive()
        injector = WhoisFaultInjector(FaultConfig(whois_stale_rate=1.0))
        injector.degrade(archive)
        # The pristine archive still sees the deletion and the transfer.
        assert archive.history("beta.com")[0].deleted == 50
        assert archive.registrar_at("gamma.com", 60) == "godaddy"


class _FailNTimes(NameserverBehavior):
    """Raises a transient failure for the first ``fails`` queries."""

    def __init__(self, fails: int, kind: str = "timeout", rdata: str = "192.0.2.80"):
        super().__init__()
        self.fails = fails
        self.kind = kind
        self.rdata = rdata
        self.calls = 0

    def handle(self, day, qname, qtype, source_ip):
        self.calls += 1
        if self.calls <= self.fails:
            raise TransientServerFailure(self.kind)
        return [self.rdata]


class _AlwaysSlow(NameserverBehavior):
    """Always answers, but ``latency_ms`` late."""

    def __init__(self, latency_ms: int, rdata: str = "192.0.2.80"):
        super().__init__()
        self.latency_ms = latency_ms
        self.rdata = rdata

    def handle(self, day, qname, qtype, source_ip):
        raise TransientServerFailure(
            "slow", latency_ms=self.latency_ms, answer=[self.rdata]
        )


@pytest.fixture()
def flaky_db():
    database = ZoneDatabase(["com"])
    database.set_delegation(0, "foo.com", ["ns1.foo.com"])
    database.set_glue(0, "ns1.foo.com")
    database.set_delegation(0, "bar.com", ["ns1.foo.com"])
    return database


class TestResolverRetry:
    def test_no_policy_gives_up_after_one_transient_try(self, flaky_db):
        resolver = IterativeResolver(flaky_db)
        resolver.attach_server("ns1.foo.com", _FailNTimes(1))
        result = resolver.resolve("bar.com", day=5)
        assert result.status is ResolutionStatus.TRANSIENT
        assert result.transient_failures == 1
        assert result.retries == 0

    def test_retry_succeeds_after_transient_failures(self, flaky_db):
        resolver = IterativeResolver(
            flaky_db, retry_policy=RetryPolicy(max_retries=2)
        )
        resolver.attach_server("ns1.foo.com", _FailNTimes(2))
        result = resolver.resolve("bar.com", day=5)
        assert result.ok
        assert result.answer == ["192.0.2.80"]
        assert result.retries == 2
        assert result.transient_failures == 2
        assert result.degraded

    def test_exhausted_retries_are_transient_not_lame(self, flaky_db):
        resolver = IterativeResolver(
            flaky_db, retry_policy=RetryPolicy(max_retries=1)
        )
        resolver.attach_server("ns1.foo.com", _FailNTimes(99, kind="servfail"))
        result = resolver.resolve("bar.com", day=5)
        assert result.status is ResolutionStatus.TRANSIENT
        # Transient failure does not prove lameness.
        assert not resolver.is_lame("bar.com", day=5)

    def test_true_silence_is_still_lame(self, flaky_db):
        resolver = IterativeResolver(
            flaky_db, retry_policy=RetryPolicy(max_retries=2)
        )
        # Glue exists but nobody is listening: definitive silence.
        assert resolver.resolve("bar.com", day=5).status is ResolutionStatus.LAME
        assert resolver.is_lame("bar.com", day=5)

    def test_slow_answer_accepted_once_backoff_grows_the_budget(self, flaky_db):
        policy = RetryPolicy(
            max_retries=2, base_timeout_ms=1000, backoff_factor=2.0,
            max_timeout_ms=8000,
        )
        resolver = IterativeResolver(flaky_db, retry_policy=policy)
        resolver.attach_server("ns1.foo.com", _AlwaysSlow(1500))
        result = resolver.resolve("bar.com", day=5)
        # Attempt 0 (budget 1000ms) rejects the 1500ms answer; attempt 1
        # (budget 2000ms) accepts it.
        assert result.ok
        assert result.retries == 1
        assert result.transient_failures == 1

    def test_slow_answer_over_every_budget_is_transient(self, flaky_db):
        policy = RetryPolicy(
            max_retries=1, base_timeout_ms=100, backoff_factor=2.0,
            max_timeout_ms=150,
        )
        resolver = IterativeResolver(flaky_db, retry_policy=policy)
        resolver.attach_server("ns1.foo.com", _AlwaysSlow(1500))
        result = resolver.resolve("bar.com", day=5)
        assert result.status is ResolutionStatus.TRANSIENT

    def test_wire_capture_records_each_attempt(self, flaky_db):
        resolver = IterativeResolver(
            flaky_db, capture_wire=True, retry_policy=RetryPolicy(max_retries=2)
        )
        resolver.attach_server("ns1.foo.com", _FailNTimes(2))
        assert resolver.resolve("bar.com", day=5).ok
        exchanges = [e for e in resolver.wire_log if e.server == "ns1.foo.com"]
        assert [e.attempt for e in exchanges] == [0, 1, 2]
        assert [e.error for e in exchanges] == ["timeout", "timeout", None]
        assert exchanges[-1].response is not None

    def test_stock_resolution_unchanged_with_policy_attached(self, flaky_db):
        baseline = IterativeResolver(flaky_db)
        with_policy = IterativeResolver(
            flaky_db, retry_policy=RetryPolicy(max_retries=3)
        )
        for resolver in (baseline, with_policy):
            server = AnsweringBehavior()
            server.add_record("bar.com", RRType.A, "192.0.2.80")
            resolver.attach_server("ns1.foo.com", server)
        first = baseline.resolve("bar.com", day=5)
        second = with_policy.resolve("bar.com", day=5)
        assert first.status == second.status
        assert first.answer == second.answer
        assert second.retries == 0


class TestFlakyBehavior:
    def test_disabled_delegates_without_drawing(self):
        inner = AnsweringBehavior()
        inner.add_record("x.com", RRType.A, "192.0.2.9")
        flaky = FlakyBehavior(inner=inner, config=FaultConfig.off(), host="ns1.x.com")
        assert flaky.handle(0, "x.com", RRType.A, "1.2.3.4") == ["192.0.2.9"]
        assert flaky.faults_injected == 0

    def test_timeout_rate_one_always_raises_but_logs_the_query(self):
        inner = SilentBehavior()
        flaky = FlakyBehavior(
            inner=inner, config=FaultConfig(ns_timeout_rate=1.0), host="ns1.x.com"
        )
        with pytest.raises(TransientServerFailure) as excinfo:
            flaky.handle(0, "x.com", RRType.A, "1.2.3.4")
        assert excinfo.value.kind == "timeout"
        assert len(flaky.queries_for("x.com")) == 1  # the query arrived

    def test_slow_carries_the_answer_and_latency(self):
        inner = AnsweringBehavior()
        inner.add_record("x.com", RRType.A, "192.0.2.9")
        flaky = FlakyBehavior(
            inner=inner,
            config=FaultConfig(ns_slow_rate=1.0, slow_latency_ms=700),
            host="ns1.x.com",
        )
        with pytest.raises(TransientServerFailure) as excinfo:
            flaky.handle(0, "x.com", RRType.A, "1.2.3.4")
        assert excinfo.value.kind == "slow"
        assert excinfo.value.answer == ["192.0.2.9"]
        assert excinfo.value.latency_ms == 700

    def test_flaky_silent_server_stays_silent(self):
        flaky = FlakyBehavior(
            inner=SilentBehavior(),
            config=FaultConfig(ns_slow_rate=1.0),
            host="ns1.x.com",
        )
        # A "slow" fault on a silent server has nothing to delay.
        assert flaky.handle(0, "x.com", RRType.A, "1.2.3.4") is None


class TestIngestGapBridging:
    def _snapshot(self, day: int, domains: dict) -> ZoneSnapshot:
        return ZoneSnapshot(
            day=day, tld="biz",
            delegations={d: frozenset(ns) for d, ns in domains.items()},
        )

    def test_short_gap_keeps_the_interval_open(self):
        db = ZoneDatabase(ingest_policy=IngestPolicy(gap_bridge_days=30))
        delegated = {"victim.biz": ["ns1.host.com"]}
        db.ingest_snapshot(self._snapshot(0, delegated))
        db.ingest_snapshot(self._snapshot(10, {}))  # missing: within window
        report = db.ingest_snapshot(self._snapshot(20, delegated))
        assert report.gaps_bridged == 1
        db.finalize_pending()
        records = db.domain_records("victim.biz")
        assert len(records) == 1
        assert records[0].end is None

    def test_long_gap_closes_at_first_absence(self):
        db = ZoneDatabase(ingest_policy=IngestPolicy(gap_bridge_days=5))
        delegated = {"victim.biz": ["ns1.host.com"]}
        db.ingest_snapshot(self._snapshot(0, delegated))
        db.ingest_snapshot(self._snapshot(10, {}))
        report = db.ingest_snapshot(self._snapshot(30, delegated))
        assert report.closed_after_gap == 1
        records = sorted(db.domain_records("victim.biz"), key=lambda r: r.start)
        assert [(r.start, r.end) for r in records] == [(0, 10), (30, None)]

    def test_finalize_closes_trailing_absences(self):
        db = ZoneDatabase(ingest_policy=IngestPolicy(gap_bridge_days=30))
        db.ingest_snapshot(self._snapshot(0, {"victim.biz": ["ns1.host.com"]}))
        db.ingest_snapshot(self._snapshot(10, {}))
        report = db.finalize_pending()
        assert report.closed == 1
        assert report.domains == ["victim.biz"]
        assert report.deltas_emitted >= 1
        assert not report.clean
        records = db.domain_records("victim.biz")
        assert [(r.start, r.end) for r in records] == [(0, 10)]

    def test_zero_window_reproduces_strict_diffing(self):
        strict = ZoneDatabase()
        bridged = ZoneDatabase(ingest_policy=IngestPolicy(gap_bridge_days=0))
        for db in (strict, bridged):
            db.ingest_snapshot(self._snapshot(0, {"victim.biz": ["ns1.host.com"]}))
            db.ingest_snapshot(self._snapshot(10, {}))
            db.ingest_snapshot(self._snapshot(20, {"victim.biz": ["ns1.host.com"]}))
            db.finalize_pending()
        assert (
            [(r.start, r.end) for r in strict.domain_records("victim.biz")]
            == [(r.start, r.end) for r in bridged.domain_records("victim.biz")]
            == [(0, 10), (20, None)]
        )

    def test_strict_mode_raises_on_out_of_order(self):
        from repro.zonedb.database import IngestError

        db = ZoneDatabase(ingest_policy=IngestPolicy(strict=True))
        db.ingest_snapshot(self._snapshot(10, {"a.biz": ["ns1.host.com"]}))
        with pytest.raises(IngestError):
            db.ingest_snapshot(self._snapshot(5, {"a.biz": ["ns1.host.com"]}))

    def test_strict_mode_raises_on_corrupt_records(self):
        from repro.zonedb.database import IngestError

        db = ZoneDatabase(ingest_policy=IngestPolicy(strict=True))
        with pytest.raises(IngestError):
            db.ingest_snapshot(
                self._snapshot(0, {"a.biz": ["ns1..host.com"]})
            )


class TestPipelineCheckpoint:
    def test_kill_and_resume_yields_identical_result(self, tiny_bundle, tmp_path):
        from repro.detection.pipeline import DetectionPipeline

        zonedb = tiny_bundle.world.zonedb
        whois = tiny_bundle.world.whois
        baseline = DetectionPipeline(zonedb, whois).run()

        checkpoint = tmp_path / "pipeline.pkl"
        killed = DetectionPipeline(zonedb, whois)

        def boom(view, state):
            raise RuntimeError("killed mid-run")

        killed._stage_single_repo = boom
        with pytest.raises(RuntimeError):
            killed.run(checkpoint_path=checkpoint)
        assert checkpoint.exists()

        resumed = DetectionPipeline(zonedb, whois).run(checkpoint_path=checkpoint)
        assert [s.name for s in resumed.sacrificial] == [
            s.name for s in baseline.sacrificial
        ]
        assert resumed.funnel == baseline.funnel
