"""Tests for the defensive registration sweep (footnote 11)."""

import pytest

from repro.api import reproduce
from repro.dnscore.names import Name
from repro.experiment.defensive import DefensiveSweep, REGISTRATION_FEE_USD


@pytest.fixture(scope="module")
def sweep_bundle():
    # Private world: the sweep mutates registry state.
    return reproduce(seed=911, scale=0.25, use_cache=False)


@pytest.fixture(scope="module")
def sweep(sweep_bundle):
    return DefensiveSweep(sweep_bundle.world, sweep_bundle.study)


class TestEnumeration:
    def test_targets_exist(self, sweep):
        assert sweep.enumerate_targets()

    def test_targets_are_unregistered(self, sweep, sweep_bundle):
        for target in sweep.enumerate_targets():
            registry = sweep_bundle.world.roster.registry_for(
                target.registered_domain
            )
            assert not registry.repository.domain_exists(target.registered_domain)

    def test_ranking_restricted_first_then_size(self, sweep):
        targets = sweep.enumerate_targets()
        saw_unrestricted = False
        for target in targets:
            if not target.reaches_restricted_tld:
                saw_unrestricted = True
            elif saw_unrestricted:
                pytest.fail("restricted-TLD targets must rank first")
        counts = [t.protection_count for t in targets if not t.reaches_restricted_tld]
        assert counts == sorted(counts, reverse=True)

    def test_restricted_flag_consistent(self, sweep):
        for target in sweep.enumerate_targets():
            expected = any(
                Name(d).tld in ("edu", "gov") for d in target.protected_domains
            )
            assert target.reaches_restricted_tld == expected


class TestExecution:
    @pytest.fixture(scope="class")
    def report(self, sweep):
        return sweep.execute(budget=10)

    def test_budget_respected(self, report):
        assert len(report.registered) <= 10

    def test_registrations_took_effect(self, report, sweep_bundle):
        for target in report.registered:
            registry = sweep_bundle.world.roster.registry_for(
                target.registered_domain
            )
            assert registry.repository.domain_exists(target.registered_domain)
            assert sweep_bundle.world.whois.ever_registered(
                target.registered_domain
            )

    def test_defensive_registrations_have_no_ns(self, report, sweep_bundle):
        """Protected domains stay lame, never resolve to the defender."""
        for target in report.registered:
            registry = sweep_bundle.world.roster.registry_for(
                target.registered_domain
            )
            obj = registry.repository.domain(target.registered_domain)
            assert obj.nameservers == []

    def test_cost_accounting(self, report):
        assert report.cost_usd == len(report.registered) * REGISTRATION_FEE_USD
        if report.protected_domains:
            assert report.cost_per_protected_domain() > 0

    def test_highest_value_first_means_cheap_protection(self, sweep_bundle):
        """The top-10 sweep protects far more domains per dollar than the
        long tail would — the ROI asymmetry hijackers also exploit."""
        sweep = DefensiveSweep(sweep_bundle.world, sweep_bundle.study)
        remaining = sweep.enumerate_targets()
        if len(remaining) < 20:
            pytest.skip("not enough targets left at this scale")
        top = remaining[:10]
        tail = remaining[-10:]
        top_protected = len({d for t in top for d in t.protected_domains})
        tail_protected = len({d for t in tail for d in t.protected_domains})
        assert top_protected > tail_protected
