"""Kill-anywhere + resume = bit-identical, on both store backends.

The exhaustive test enumerates every chaos boundary a supervised run
crosses (worker stage boundaries, supervisor journal appends, torn
journal writes) and kills the run at each one in turn; every resumed
run must reproduce the uninterrupted result digest exactly and leave a
run directory that verifies clean. The randomized trials drive the
same claim through the seeded harness with a full kill budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.faults.process import (
    KILL_EXIT_CODE,
    ChaosKill,
    ChaosMonkey,
    ProcessChaosConfig,
)
from repro.runner.chaos_harness import BACKENDS, run_kill_resume_trial
from repro.runner.execution import run_supervised_detection
from repro.runner.journal import RunJournal
from repro.runner.supervisor import RunFailed, SupervisorPolicy
from repro.store.verify import verify_run_dir

SCALE = 0.06
SEED = 2021
SHARDS = 2


class BoundaryKiller:
    """Duck-typed chaos monkey that kills exactly once, at boundary ``nth``.

    Boundaries are counted across all three sites in program order, so
    sweeping ``nth`` over ``[0, total)`` kills the run at every place a
    real crash could land. ``nth=None`` never kills — a counting probe.
    """

    def __init__(self, nth: int | None = None) -> None:
        self.nth = nth
        self.crossed = 0
        self.killed_at: tuple[str, str] | None = None

    def _cross(self, site: str, label: str) -> bool:
        index = self.crossed
        self.crossed += 1
        if self.nth is not None and self.killed_at is None and index == self.nth:
            self.killed_at = (site, label)
            return True
        return False

    def worker_boundary(self, label: str) -> None:
        if self._cross("worker", label):
            raise ChaosKill("worker", label)

    def supervisor_boundary(self, label: str) -> None:
        if self._cross("supervisor", label):
            raise ChaosKill("supervisor", label)

    def torn_write(self, data: bytes) -> int | None:
        if self._cross("torn", "journal-append"):
            return max(1, len(data) // 2) if len(data) >= 2 else 0
        return None


@dataclass(frozen=True)
class Inputs:
    backend: str
    zonedb: object
    whois: object
    dataset_path: Path | None
    whois_path: Path | None


@pytest.fixture(scope="module")
def world():
    from repro.ecosystem.config import default_scenario
    from repro.ecosystem.world import World

    return World(default_scenario(SEED).scaled(SCALE)).run()


@pytest.fixture(scope="module")
def sqlite_inputs(world, tmp_path_factory):
    from repro.ecosystem.config import default_scenario
    from repro.store.artifacts import scenario_digest
    from repro.store.dataset import open_dataset, write_dataset
    from repro.whois.archive import WhoisArchive

    root = tmp_path_factory.mktemp("sqlite-inputs")
    config = default_scenario(SEED).scaled(SCALE)
    dataset_path = write_dataset(
        world.zonedb,
        root / "dataset.sqlite",
        scenario_digest=scenario_digest(config),
    )
    whois_path = root / "whois.jsonl"
    world.whois.dump(whois_path)
    return Inputs(
        "sqlite",
        open_dataset(dataset_path),
        WhoisArchive.load(whois_path),
        dataset_path,
        whois_path,
    )


@pytest.fixture(scope="module", params=list(BACKENDS))
def inputs(request, world, sqlite_inputs):
    if request.param == "memory":
        return Inputs("memory", world.zonedb, world.whois, None, None)
    return sqlite_inputs


@pytest.fixture(scope="module")
def baseline(inputs, tmp_path_factory):
    run_dir = tmp_path_factory.mktemp(f"baseline-{inputs.backend}")
    return run_supervised_detection(
        inputs.zonedb, inputs.whois, run_dir=run_dir / "run", shards=SHARDS
    )


class TestKillAnywhere:
    def test_kill_at_every_boundary_resumes_bit_identical(
        self, inputs, baseline, tmp_path
    ):
        probe = BoundaryKiller(nth=None)
        run_supervised_detection(
            inputs.zonedb,
            inputs.whois,
            run_dir=tmp_path / "probe",
            shards=SHARDS,
            chaos=probe,
        )
        total = probe.crossed
        # Sanity: the sweep actually covers stage, append, and torn sites.
        assert total > 3 * SHARDS

        for nth in range(total):
            killer = BoundaryKiller(nth=nth)
            run_dir = tmp_path / f"kill-{nth:03d}"
            with pytest.raises(ChaosKill):
                run_supervised_detection(
                    inputs.zonedb,
                    inputs.whois,
                    run_dir=run_dir,
                    shards=SHARDS,
                    chaos=killer,
                )
            assert killer.killed_at is not None
            run_id = RunJournal.open(run_dir / "journal.jsonl").run_id
            resumed = run_supervised_detection(
                inputs.zonedb,
                inputs.whois,
                run_dir=run_dir,
                shards=SHARDS,
                resume=run_id,
            )
            assert resumed.result_digest == baseline.result_digest, (
                nth,
                killer.killed_at,
            )
            issues = [str(issue) for issue in verify_run_dir(run_dir)]
            assert not issues, (nth, killer.killed_at, issues)


class TestRandomizedTrials:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_kill_budget_trial_passes(self, backend, tmp_path):
        report = run_kill_resume_trial(
            workdir=tmp_path,
            scale=SCALE,
            seed=SEED,
            backend=backend,
            shards=3,
            chaos_seed=7,
            max_kills=5,
        )
        assert report.kills >= 5
        assert report.resumes == report.kills
        assert report.bit_identical, (report.baseline_digest, report.chaos_digest)
        assert report.passed, report.verify_issues


class TestProcessPoolChaos:
    def test_real_crashes_retry_to_bit_identical(self, sqlite_inputs, tmp_path):
        inline = run_supervised_detection(
            sqlite_inputs.zonedb,
            sqlite_inputs.whois,
            run_dir=tmp_path / "inline",
            shards=2,
        )
        monkey = ChaosMonkey(
            ProcessChaosConfig(seed=3, kill_worker_rate=1.0)
        )
        policy = SupervisorPolicy(
            workers=2, max_retries=2, backoff_base_s=0.01,
            heartbeat_timeout_s=60.0, poll_interval_s=0.01,
        )
        supervised = run_supervised_detection(
            sqlite_inputs.zonedb,
            sqlite_inputs.whois,
            run_dir=tmp_path / "procs",
            shards=2,
            policy=policy,
            chaos=monkey,
            dataset_path=sqlite_inputs.dataset_path,
            whois_path=sqlite_inputs.whois_path,
        )
        assert supervised.result_digest == inline.result_digest
        assert all(o.attempts == 2 for o in supervised.outcomes.values())
        assert all(
            o.crashes == [f"exit code {KILL_EXIT_CODE}"]
            for o in supervised.outcomes.values()
        )
        assert not [str(issue) for issue in verify_run_dir(tmp_path / "procs")]


class TestResumeSemantics:
    def _run(self, inputs, run_dir, **kwargs):
        return run_supervised_detection(
            inputs.zonedb, inputs.whois, run_dir=run_dir, shards=SHARDS, **kwargs
        )

    def test_completed_run_replays_without_reexecution(self, world, tmp_path):
        inputs = Inputs("memory", world.zonedb, world.whois, None, None)
        first = self._run(inputs, tmp_path / "run")
        replay = self._run(inputs, tmp_path / "run", resume=first.run_id)
        assert replay.resumed
        assert replay.outcomes == {}
        assert replay.result_digest == first.result_digest

    def test_existing_journal_requires_resume(self, world, tmp_path):
        inputs = Inputs("memory", world.zonedb, world.whois, None, None)
        self._run(inputs, tmp_path / "run")
        with pytest.raises(RunFailed, match="already holds a journal"):
            self._run(inputs, tmp_path / "run")

    def test_resume_rejects_wrong_run_id(self, world, tmp_path):
        inputs = Inputs("memory", world.zonedb, world.whois, None, None)
        self._run(inputs, tmp_path / "run")
        with pytest.raises(RunFailed, match="belongs to"):
            self._run(inputs, tmp_path / "run", resume="run-bogus")

    def test_resume_without_journal_fails(self, world, tmp_path):
        inputs = Inputs("memory", world.zonedb, world.whois, None, None)
        with pytest.raises(RunFailed, match="nothing to resume"):
            self._run(inputs, tmp_path / "run", resume="run-bogus")

    def test_resume_detects_changed_inputs(self, world, tmp_path):
        inputs = Inputs("memory", world.zonedb, world.whois, None, None)
        first = self._run(inputs, tmp_path / "run")
        with pytest.raises(RunFailed, match="run inputs changed"):
            run_supervised_detection(
                inputs.zonedb,
                inputs.whois,
                run_dir=tmp_path / "run",
                shards=SHARDS + 1,
                resume=first.run_id,
            )
