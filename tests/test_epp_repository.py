"""Tests for the EPP repository: RFC 5731/5732 rules and the loophole."""

import pytest

from repro.epp.errors import EppError, ResultCode
from repro.epp.objects import DomainStatus
from repro.epp.repository import EppRepository


@pytest.fixture()
def repo():
    return EppRepository("sim-verisign", ["com", "net", "edu", "gov"])


@pytest.fixture()
def populated(repo):
    repo.create_domain("regA", "foo.com", day=0, period_years=2)
    repo.create_host("regA", "ns1.foo.com", day=0, addresses=["192.0.2.1"])
    repo.create_host("regA", "ns2.foo.com", day=0, addresses=["192.0.2.2"])
    repo.create_domain("regB", "bar.com", day=1, nameservers=["ns2.foo.com"])
    return repo


def code_of(excinfo) -> ResultCode:
    return excinfo.value.code


class TestNamespace:
    def test_internal_detection(self, repo):
        assert repo.is_internal("ns1.foo.com")
        assert repo.is_internal("x.y.net")
        assert not repo.is_internal("x.foo.biz")

    def test_superordinate_is_second_level(self, repo):
        assert repo.superordinate_of("ns1.sub.foo.com") == "foo.com"

    def test_superordinate_rejects_external(self, repo):
        with pytest.raises(EppError) as err:
            repo.superordinate_of("ns1.foo.biz")
        assert code_of(err) is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_superordinate_rejects_bare_tld(self, repo):
        with pytest.raises(EppError):
            repo.superordinate_of("com")

    def test_rejects_non_tld_namespace(self):
        with pytest.raises(ValueError):
            EppRepository("x", ["co.uk"])


class TestDomainCreate:
    def test_create_ok(self, repo):
        obj = repo.create_domain("regA", "foo.com", day=5, period_years=3)
        assert obj.created == 5
        assert obj.expires == 5 + 3 * 365
        assert obj.sponsor == "regA"

    def test_wrong_tld_rejected(self, repo):
        with pytest.raises(EppError) as err:
            repo.create_domain("regA", "foo.org", day=0)
        assert code_of(err) is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_third_level_rejected(self, repo):
        with pytest.raises(EppError) as err:
            repo.create_domain("regA", "a.foo.com", day=0)
        assert code_of(err) is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_duplicate_rejected(self, repo):
        repo.create_domain("regA", "foo.com", day=0)
        with pytest.raises(EppError) as err:
            repo.create_domain("regB", "foo.com", day=1)
        assert code_of(err) is ResultCode.OBJECT_EXISTS

    def test_nameservers_must_be_host_objects(self, repo):
        with pytest.raises(EppError) as err:
            repo.create_domain("regA", "foo.com", day=0, nameservers=["ns1.x.com"])
        assert code_of(err) is ResultCode.ASSOCIATION_PROHIBITS_OPERATION

    def test_create_links_hosts(self, populated):
        assert populated.host("ns2.foo.com").linked_domains == {"bar.com"}


class TestDomainDelete:
    def test_delete_blocked_by_subordinate_hosts(self, populated):
        """RFC 5731 §3.2.2: the rule that forces the rename workaround."""
        with pytest.raises(EppError) as err:
            populated.delete_domain("regA", "foo.com", day=10)
        assert code_of(err) is ResultCode.ASSOCIATION_PROHIBITS_OPERATION

    def test_delete_ok_without_subordinates(self, repo):
        repo.create_domain("regA", "solo.com", day=0)
        repo.delete_domain("regA", "solo.com", day=1)
        assert not repo.domain_exists("solo.com")

    def test_delete_requires_sponsor(self, populated):
        with pytest.raises(EppError) as err:
            populated.delete_domain("regB", "foo.com", day=10)
        assert code_of(err) is ResultCode.AUTHORIZATION_ERROR

    def test_delete_unlinks_nameservers(self, populated):
        populated.delete_domain("regB", "bar.com", day=10)
        assert populated.host("ns2.foo.com").linked_domains == set()

    def test_delete_prohibited_status(self, repo):
        repo.create_domain("regA", "locked.com", day=0)
        repo.set_domain_status(
            "regA", "locked.com", day=0,
            add=[DomainStatus.CLIENT_DELETE_PROHIBITED],
        )
        with pytest.raises(EppError) as err:
            repo.delete_domain("regA", "locked.com", day=1)
        assert code_of(err) is ResultCode.STATUS_PROHIBITS_OPERATION

    def test_delete_missing_domain(self, repo):
        with pytest.raises(EppError) as err:
            repo.delete_domain("regA", "ghost.com", day=0)
        assert code_of(err) is ResultCode.OBJECT_DOES_NOT_EXIST


class TestHostCreate:
    def test_internal_requires_superordinate(self, repo):
        with pytest.raises(EppError) as err:
            repo.create_host("regA", "ns1.ghost.com", day=0, addresses=["192.0.2.1"])
        assert code_of(err) is ResultCode.OBJECT_DOES_NOT_EXIST

    def test_internal_requires_superordinate_sponsor(self, populated):
        with pytest.raises(EppError) as err:
            populated.create_host(
                "regB", "ns3.foo.com", day=0, addresses=["192.0.2.3"]
            )
        assert code_of(err) is ResultCode.AUTHORIZATION_ERROR

    def test_external_host_allowed_unchecked(self, repo):
        obj = repo.create_host("regA", "ns1.whatever.biz", day=0)
        assert obj.external
        assert obj.superordinate is None

    def test_external_host_rejects_addresses(self, repo):
        with pytest.raises(EppError) as err:
            repo.create_host(
                "regA", "ns1.whatever.biz", day=0, addresses=["192.0.2.9"]
            )
        assert code_of(err) is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_duplicate_host_rejected(self, populated):
        with pytest.raises(EppError) as err:
            populated.create_host(
                "regA", "ns1.foo.com", day=2, addresses=["192.0.2.9"]
            )
        assert code_of(err) is ResultCode.OBJECT_EXISTS

    def test_subordinate_tracking(self, populated):
        assert populated.subordinate_hosts("foo.com") == {
            "ns1.foo.com", "ns2.foo.com"
        }


class TestHostDelete:
    def test_linked_host_cannot_be_deleted(self, populated):
        """RFC 5732 §3.2.2: the other half of the constraint pair."""
        with pytest.raises(EppError) as err:
            populated.delete_host("regA", "ns2.foo.com", day=10)
        assert code_of(err) is ResultCode.ASSOCIATION_PROHIBITS_OPERATION

    def test_unlinked_host_deleted(self, populated):
        populated.delete_host("regA", "ns1.foo.com", day=10)
        assert not populated.host_exists("ns1.foo.com")
        assert populated.subordinate_hosts("foo.com") == {"ns2.foo.com"}

    def test_delete_requires_sponsor(self, populated):
        with pytest.raises(EppError) as err:
            populated.delete_host("regB", "ns1.foo.com", day=10)
        assert code_of(err) is ResultCode.AUTHORIZATION_ERROR


class TestHostRename:
    """The core of the paper: host renames and the external loophole."""

    def test_rename_to_external_always_allowed(self, populated):
        obj = populated.rename_host(
            "regA", "ns2.foo.com", "dropthishost-1234.biz", day=10
        )
        assert obj.external
        assert obj.name == "dropthishost-1234.biz"

    def test_rename_clears_addresses_for_external(self, populated):
        obj = populated.rename_host("regA", "ns2.foo.com", "x.biz", day=10)
        assert obj.addresses == set()

    def test_rename_updates_referring_domains(self, populated):
        """The silent delegation rewrite that creates the hijack risk."""
        populated.rename_host("regA", "ns2.foo.com", "x-random.biz", day=10)
        assert populated.domain("bar.com").nameservers == ["x-random.biz"]

    def test_rename_detaches_subordinate(self, populated):
        populated.rename_host("regA", "ns2.foo.com", "x.biz", day=10)
        assert populated.subordinate_hosts("foo.com") == {"ns1.foo.com"}

    def test_rename_enables_domain_delete(self, populated):
        populated.delete_host("regA", "ns1.foo.com", day=10)
        populated.rename_host("regA", "ns2.foo.com", "x.biz", day=10)
        populated.delete_domain("regA", "foo.com", day=10)
        assert not populated.domain_exists("foo.com")

    def test_rename_to_internal_requires_superordinate(self, populated):
        with pytest.raises(EppError) as err:
            populated.rename_host("regA", "ns2.foo.com", "ns1.ghost.com", day=10)
        assert code_of(err) is ResultCode.OBJECT_DOES_NOT_EXIST

    def test_rename_to_internal_sink_ok(self, populated):
        populated.create_domain("regA", "sink.com", day=5)
        obj = populated.rename_host("regA", "ns2.foo.com", "x.sink.com", day=10)
        assert not obj.external
        assert obj.superordinate == "sink.com"
        assert populated.subordinate_hosts("sink.com") == {"x.sink.com"}

    def test_rename_to_other_registrars_domain_rejected(self, populated):
        populated.create_domain("regB", "bsink.com", day=5)
        with pytest.raises(EppError) as err:
            populated.rename_host("regA", "ns2.foo.com", "x.bsink.com", day=10)
        assert code_of(err) is ResultCode.AUTHORIZATION_ERROR

    def test_external_host_cannot_be_renamed_again(self, populated):
        """Once external, the rename is irreversible (§2.4)."""
        populated.rename_host("regA", "ns2.foo.com", "x.biz", day=10)
        with pytest.raises(EppError) as err:
            populated.rename_host("regA", "x.biz", "y.biz", day=11)
        assert code_of(err) is ResultCode.STATUS_PROHIBITS_OPERATION

    def test_rename_collision_with_existing_host(self, populated):
        populated.create_host("regA", "taken.biz", day=5)
        with pytest.raises(EppError) as err:
            populated.rename_host("regA", "ns2.foo.com", "taken.biz", day=10)
        assert code_of(err) is ResultCode.OBJECT_EXISTS

    def test_rename_requires_sponsor(self, populated):
        with pytest.raises(EppError) as err:
            populated.rename_host("regB", "ns2.foo.com", "x.biz", day=10)
        assert code_of(err) is ResultCode.AUTHORIZATION_ERROR

    def test_rename_preserves_linkage(self, populated):
        obj = populated.rename_host("regA", "ns2.foo.com", "x.biz", day=10)
        assert obj.linked_domains == {"bar.com"}


class TestDomainUpdate:
    def test_add_and_remove_ns(self, populated):
        populated.update_domain_ns(
            "regB", "bar.com", day=5,
            add=["ns1.foo.com"], remove=["ns2.foo.com"],
        )
        assert populated.domain("bar.com").nameservers == ["ns1.foo.com"]
        assert populated.host("ns1.foo.com").linked_domains == {"bar.com"}
        assert populated.host("ns2.foo.com").linked_domains == set()

    def test_update_requires_sponsor(self, populated):
        """EPP isolation: registrar A cannot touch registrar B's domain."""
        with pytest.raises(EppError) as err:
            populated.update_domain_ns(
                "regA", "bar.com", day=5, remove=["ns2.foo.com"]
            )
        assert code_of(err) is ResultCode.AUTHORIZATION_ERROR

    def test_add_missing_host_rejected(self, populated):
        with pytest.raises(EppError) as err:
            populated.update_domain_ns(
                "regB", "bar.com", day=5, add=["ns1.ghost.net"]
            )
        assert code_of(err) is ResultCode.ASSOCIATION_PROHIBITS_OPERATION

    def test_remove_nondelegated_rejected(self, populated):
        with pytest.raises(EppError) as err:
            populated.update_domain_ns(
                "regB", "bar.com", day=5, remove=["ns1.foo.com"]
            )
        assert code_of(err) is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_renew(self, populated):
        before = populated.domain("foo.com").expires
        populated.renew_domain("regA", "foo.com", day=5, period_years=2)
        assert populated.domain("foo.com").expires == before + 730


class TestPurge:
    def test_purge_orphans_subordinates(self, populated):
        """Registry purge bypasses the SHOULD NOT and orphans hosts."""
        orphans = populated.purge_domain("foo.com", day=20)
        assert orphans == ["ns1.foo.com", "ns2.foo.com"]
        assert not populated.domain_exists("foo.com")
        assert populated.host("ns2.foo.com").superordinate is None
        # The orphaned host still carries its delegations.
        assert populated.host("ns2.foo.com").linked_domains == {"bar.com"}


class TestZoneGeneration:
    def test_delegations_published(self, populated):
        zone = populated.zone_for("com")
        assert zone.nameservers_of("bar.com") == {"ns2.foo.com"}

    def test_glue_published_for_internal_hosts(self, populated):
        zone = populated.zone_for("com")
        assert zone.glue_of("ns1.foo.com") == {"192.0.2.1"}

    def test_domains_without_ns_not_published(self, populated):
        assert "foo.com" not in populated.zone_for("com")

    def test_hold_status_withheld(self, populated):
        populated.set_domain_status(
            "regB", "bar.com", day=5, add=[DomainStatus.SERVER_HOLD]
        )
        assert "bar.com" not in populated.zone_for("com")

    def test_wrong_tld_rejected(self, populated):
        with pytest.raises(EppError):
            populated.zone_for("org")

    def test_audit_hook_fires(self):
        events = []
        repo = EppRepository(
            "x", ["com"], audit_hook=lambda d, op, det: events.append(op)
        )
        repo.create_domain("regA", "foo.com", day=0)
        assert events == ["domain:create"]
