"""Tests for the zone mirror: audit events → zone-database history.

Includes the equivalence check that matters most: driving a repository
through a provisioning sequence and mirroring it must produce the same
database as ingesting full daily snapshots of the published zone.
"""

import pytest

from repro.dnscore.zone import Zone
from repro.ecosystem.mirror import ZoneMirror
from repro.epp.objects import DomainStatus
from repro.epp.repository import EppRepository
from repro.zonedb.database import ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot


@pytest.fixture()
def mirrored():
    repo = EppRepository("sim-verisign", ["com", "net"])
    db = ZoneDatabase()
    mirror = ZoneMirror(repo, db)
    repo.set_audit_hook(mirror)
    return repo, db


class TestDomainMirroring:
    def test_create_with_ns(self, mirrored):
        repo, db = mirrored
        repo.create_host("regA", "ns1.ext.org", day=0)
        repo.create_domain("regA", "a.com", day=0, nameservers=["ns1.ext.org"])
        assert db.nameservers_of("a.com", 0) == {"ns1.ext.org"}

    def test_create_without_ns_absent(self, mirrored):
        repo, db = mirrored
        repo.create_domain("regA", "a.com", day=0)
        assert not db.domain_present("a.com", 0)

    def test_update_reflected(self, mirrored):
        repo, db = mirrored
        repo.create_host("regA", "ns1.ext.org", day=0)
        repo.create_host("regA", "ns2.ext.org", day=0)
        repo.create_domain("regA", "a.com", day=0, nameservers=["ns1.ext.org"])
        repo.update_domain_ns(
            "regA", "a.com", day=3, add=["ns2.ext.org"], remove=["ns1.ext.org"]
        )
        assert db.nameservers_of("a.com", 3) == {"ns2.ext.org"}

    def test_delete_removes(self, mirrored):
        repo, db = mirrored
        repo.create_host("regA", "ns1.ext.org", day=0)
        repo.create_domain("regA", "a.com", day=0, nameservers=["ns1.ext.org"])
        repo.delete_domain("regA", "a.com", day=4)
        assert not db.domain_present("a.com", 4)

    def test_hold_status_hides(self, mirrored):
        repo, db = mirrored
        repo.create_host("regA", "ns1.ext.org", day=0)
        repo.create_domain("regA", "a.com", day=0, nameservers=["ns1.ext.org"])
        repo.set_domain_status(
            "regA", "a.com", day=2, add=[DomainStatus.SERVER_HOLD]
        )
        assert not db.domain_present("a.com", 2)
        repo.set_domain_status(
            "regA", "a.com", day=5, remove=[DomainStatus.SERVER_HOLD]
        )
        assert db.domain_present("a.com", 5)

    def test_coverage_declared(self, mirrored):
        _repo, db = mirrored
        assert db.covers("x.com") and db.covers("x.net")


class TestHostMirroring:
    def test_glue_tracked(self, mirrored):
        repo, db = mirrored
        repo.create_domain("regA", "a.com", day=0)
        repo.create_host("regA", "ns1.a.com", day=1, addresses=["192.0.2.1"])
        assert db.glue_present("ns1.a.com", 1)

    def test_external_host_no_glue(self, mirrored):
        repo, db = mirrored
        repo.create_host("regA", "ns1.ext.org", day=1)
        assert not db.glue_present("ns1.ext.org", 1)

    def test_address_clear_removes_glue(self, mirrored):
        repo, db = mirrored
        repo.create_domain("regA", "a.com", day=0)
        repo.create_host("regA", "ns1.a.com", day=1, addresses=["192.0.2.1"])
        repo.set_host_addresses("regA", "ns1.a.com", [], day=5)
        assert not db.glue_present("ns1.a.com", 5)

    def test_host_delete_removes_glue(self, mirrored):
        repo, db = mirrored
        repo.create_domain("regA", "a.com", day=0)
        repo.create_host("regA", "ns1.a.com", day=1, addresses=["192.0.2.1"])
        repo.delete_host("regA", "ns1.a.com", day=6)
        assert not db.glue_present("ns1.a.com", 6)

    def test_rename_rewrites_delegations_and_glue(self, mirrored):
        repo, db = mirrored
        repo.create_domain("regA", "foo.com", day=0)
        repo.create_host("regA", "ns1.foo.com", day=0, addresses=["192.0.2.1"])
        repo.create_domain("regB", "bar.com", day=1, nameservers=["ns1.foo.com"])
        repo.rename_host("regA", "ns1.foo.com", "dropthishost-1.biz", day=9)
        assert db.nameservers_of("bar.com", 9) == {"dropthishost-1.biz"}
        assert not db.glue_present("ns1.foo.com", 9)
        assert db.first_seen("dropthishost-1.biz") == 9


class TestSnapshotEquivalence:
    def test_mirror_equals_daily_snapshot_diffing(self):
        """The central fidelity property of the event-driven database."""
        repo = EppRepository("sim-verisign", ["com"])
        mirror_db = ZoneDatabase()
        repo.set_audit_hook(ZoneMirror(repo, mirror_db))
        snapshot_db = ZoneDatabase(["com"])

        def snap(day):
            snapshot_db.ingest_snapshot(
                ZoneSnapshot.from_zone(day, repo.zone_for("com"))
            )

        # Day 0: hoster with glue and a client.
        repo.create_domain("regA", "foo.com", day=0)
        repo.create_host("regA", "ns1.foo.com", day=0, addresses=["192.0.2.1"])
        repo.update_domain_ns("regA", "foo.com", day=0, add=["ns1.foo.com"])
        repo.create_domain("regB", "bar.com", day=0, nameservers=["ns1.foo.com"])
        snap(0)
        # Day 3: another client.
        repo.create_domain("regB", "baz.com", day=3, nameservers=["ns1.foo.com"])
        snap(3)
        # Day 7: the rename-then-delete sequence.
        repo.update_domain_ns("regA", "foo.com", day=7, remove=["ns1.foo.com"])
        repo.rename_host("regA", "ns1.foo.com", "x9k2.biz", day=7)
        repo.delete_domain("regA", "foo.com", day=7)
        snap(7)
        # Day 9: one client fixes its delegation.
        repo.create_host("regB", "ns1.safe.org", day=9)
        repo.update_domain_ns(
            "regB", "bar.com", day=9, add=["ns1.safe.org"], remove=["x9k2.biz"]
        )
        snap(9)

        for day in (0, 3, 7, 9):
            for domain in ("foo.com", "bar.com", "baz.com"):
                assert mirror_db.nameservers_of(domain, day) == \
                    snapshot_db.nameservers_of(domain, day), (day, domain)
        for ns in ("ns1.foo.com", "x9k2.biz", "ns1.safe.org"):
            assert mirror_db.first_seen(ns) == snapshot_db.first_seen(ns), ns
        assert mirror_db.glue_present("ns1.foo.com", 0) == \
            snapshot_db.glue_present("ns1.foo.com", 0)
        assert mirror_db.glue_present("ns1.foo.com", 7) == \
            snapshot_db.glue_present("ns1.foo.com", 7)
