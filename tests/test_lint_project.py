"""Engine 3: project graph, call graph, and interprocedural rules."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.callgraph import CallGraph
from repro.lint.config import LintConfig
from repro.lint.flow import (
    check_digest_taint,
    check_watermark_bypass,
    check_worker_global_mutation,
    run_project_analysis,
    stale_baseline_diagnostics,
)
from repro.lint.project import ProjectGraph
from repro.lint.runner import run_lint


def _write_project(root: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def _config(root: Path, **overrides: object) -> LintConfig:
    defaults: dict[str, object] = dict(
        root=root,
        project_paths=("src",),
        worker_entry_points=("pkg.worker:entry",),
        worker_safe_modules=(),
        digest_sinks=(),
    )
    defaults.update(overrides)
    return LintConfig(**defaults)  # type: ignore[arg-type]


def _analyze(root: Path, config: LintConfig):
    diagnostics, _, _ = run_project_analysis(config)
    return diagnostics


class TestProjectGraph:
    def test_modules_functions_and_globals(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": """\
                LIMIT = 10

                def top():
                    return LIMIT

                class Box:
                    def get(self):
                        return top()
            """,
        })
        graph = ProjectGraph.build(_config(tmp_path))
        assert set(graph.modules) == {"pkg", "pkg.mod"}
        mod = graph.modules["pkg.mod"]
        assert mod.global_names == {"LIMIT"}
        assert set(mod.functions) == {"top", "Box.get"}
        assert mod.classes == {"Box": {"get"}}
        assert mod.symbol_names() == {"<module>", "top", "Box.get", "Box"}

    def test_import_resolution_follows_reexport(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "from pkg.impl import thing\n",
            "src/pkg/impl.py": "def thing():\n    return 1\n",
            "src/pkg/user.py": "from pkg import thing\n\ndef use():\n    return thing()\n",
        })
        graph = ProjectGraph.build(_config(tmp_path))
        user = graph.modules["pkg.user"]
        assert graph.resolve_symbol(user, "thing") == ("pkg.impl", "thing")

    def test_parse_failure_is_recorded_not_fatal(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/bad.py": "def broken(:\n",
            "src/pkg/good.py": "def fine():\n    return 0\n",
        })
        graph = ProjectGraph.build(_config(tmp_path))
        assert "src/pkg/bad.py" in graph.parse_failures
        assert "pkg.good" in graph.modules


class TestCallGraph:
    def test_reachability_through_reexport_and_method(
        self, tmp_path: Path
    ) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": """\
                from pkg.engine import Engine

                def entry(index):
                    engine = Engine()
                    engine.run()
            """,
            "src/pkg/engine.py": """\
                from pkg.state import mutate

                class Engine:
                    def run(self):
                        mutate()
            """,
            "src/pkg/state.py": """\
                CACHE = {}

                def mutate():
                    CACHE["k"] = 1
            """,
        })
        graph = ProjectGraph.build(_config(tmp_path))
        call_graph = CallGraph.build(graph)
        entry = call_graph.resolve_entry("pkg.worker:entry")
        assert entry == "pkg.worker:entry"
        parents = call_graph.reachable_from([entry])
        assert "pkg.state:mutate" in parents
        chain = call_graph.chain_to(parents, "pkg.state:mutate")
        assert chain[0] == "pkg.worker:entry"
        assert chain[-1] == "pkg.state:mutate"

    def test_address_taken_function_counts_as_edge(
        self, tmp_path: Path
    ) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": """\
                from pkg.tasks import task

                def entry(index):
                    submit(target=task)

                def submit(target):
                    pass
            """,
            "src/pkg/tasks.py": "def task():\n    return 1\n",
        })
        graph = ProjectGraph.build(_config(tmp_path))
        call_graph = CallGraph.build(graph)
        parents = call_graph.reachable_from(["pkg.worker:entry"])
        assert "pkg.tasks:task" in parents

    def test_to_dict_is_deterministic(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/a.py": "def f():\n    return g()\n\ndef g():\n    return 0\n",
        })
        config = _config(tmp_path)
        one = CallGraph.build(ProjectGraph.build(config)).to_dict()
        two = CallGraph.build(ProjectGraph.build(config)).to_dict()
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


class TestDet010WorkerGlobalMutation:
    def test_flags_reachable_global_assignment(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": """\
                from pkg.state import mutate

                def entry(index):
                    mutate()
            """,
            "src/pkg/state.py": """\
                COUNT = 0

                def mutate():
                    global COUNT
                    COUNT = COUNT + 1
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        det010 = [d for d in diagnostics if d.rule_id == "DET010"]
        assert len(det010) == 1
        finding = det010[0]
        assert finding.path == "src/pkg/state.py"
        assert finding.symbol == "mutate"
        assert finding.line == 5  # the COUNT assignment
        assert "COUNT" in finding.message

    def test_flags_in_place_container_mutation(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": """\
                from pkg.state import remember

                def entry(index):
                    remember(index)
            """,
            "src/pkg/state.py": """\
                SEEN = []

                def remember(value):
                    SEEN.append(value)
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        det010 = [d for d in diagnostics if d.rule_id == "DET010"]
        assert [(d.path, d.symbol, d.line) for d in det010] == [
            ("src/pkg/state.py", "remember", 4)
        ]

    def test_unreachable_mutation_is_not_flagged(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": "def entry(index):\n    return index\n",
            "src/pkg/state.py": """\
                CACHE = {}

                def mutate():
                    CACHE["k"] = 1
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        assert [d for d in diagnostics if d.rule_id == "DET010"] == []

    def test_local_shadowing_is_not_a_global_write(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": """\
                from pkg.state import compute

                def entry(index):
                    compute()
            """,
            "src/pkg/state.py": """\
                CACHE = {}

                def compute():
                    CACHE = {}
                    CACHE["k"] = 1
                    return CACHE
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        assert [d for d in diagnostics if d.rule_id == "DET010"] == []

    def test_obs_touch_without_detach_flags_entry(self, tmp_path: Path) -> None:
        files = {
            "src/pkg/__init__.py": "",
            "src/pkg/obsplane.py": """\
                REGISTRY = {}

                def counter(name):
                    return REGISTRY.setdefault(name, 0)

                def detach():
                    global REGISTRY
                    REGISTRY = {}
            """,
            "src/pkg/worker.py": """\
                from pkg import obsplane

                def entry(index):
                    obsplane.counter("work")
            """,
        }
        _write_project(tmp_path, files)
        config = _config(
            tmp_path, worker_safe_modules=("src/pkg/obsplane.py",)
        )
        diagnostics = _analyze(tmp_path, config)
        det010 = [d for d in diagnostics if d.rule_id == "DET010"]
        assert [(d.path, d.symbol, d.line) for d in det010] == [
            ("src/pkg/worker.py", "entry", 3)
        ]
        assert "detach" in det010[0].message

    def test_obs_touch_after_detach_is_clean(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/obsplane.py": """\
                REGISTRY = {}

                def counter(name):
                    return REGISTRY.setdefault(name, 0)

                def detach():
                    global REGISTRY
                    REGISTRY = {}
            """,
            "src/pkg/worker.py": """\
                from pkg import obsplane

                def entry(index):
                    obsplane.detach()
                    obsplane.counter("work")
            """,
        })
        config = _config(
            tmp_path, worker_safe_modules=("src/pkg/obsplane.py",)
        )
        diagnostics = _analyze(tmp_path, config)
        assert [d for d in diagnostics if d.rule_id == "DET010"] == []


class TestDet011DigestTaint:
    def test_intraprocedural_clock_into_sha256(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/digest.py": """\
                import hashlib
                import time

                def stamp():
                    started = time.perf_counter()
                    return hashlib.sha256(str(started).encode()).hexdigest()
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        det011 = [d for d in diagnostics if d.rule_id == "DET011"]
        assert [(d.path, d.symbol, d.line) for d in det011] == [
            ("src/pkg/digest.py", "stamp", 6)
        ]
        assert "perf_counter" in det011[0].message

    def test_taint_crosses_function_boundaries(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/clockwrap.py": """\
                import time

                def now():
                    return time.perf_counter()
            """,
            "src/pkg/sink.py": """\
                import hashlib

                def digest_of(payload):
                    return hashlib.sha256(payload).hexdigest()
            """,
            "src/pkg/use.py": """\
                from pkg.clockwrap import now
                from pkg.sink import digest_of

                def manifest():
                    elapsed = now()
                    return digest_of(str(elapsed).encode())
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        det011 = [d for d in diagnostics if d.rule_id == "DET011"]
        assert [(d.path, d.symbol, d.line) for d in det011] == [
            ("src/pkg/use.py", "manifest", 6)
        ]

    def test_builtin_hash_is_a_source(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/keys.py": """\
                import hashlib

                def key_for(value):
                    bucket = hash(value)
                    return hashlib.sha256(str(bucket).encode()).hexdigest()
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        det011 = [d for d in diagnostics if d.rule_id == "DET011"]
        assert [(d.symbol, d.line) for d in det011] == [("key_for", 5)]

    def test_stable_inputs_are_clean(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/clean.py": """\
                import hashlib
                import time

                def content_digest(data):
                    return hashlib.sha256(data).hexdigest()

                def elapsed(started):
                    return time.perf_counter() - started
            """,
        })
        diagnostics = _analyze(tmp_path, _config(tmp_path))
        assert [d for d in diagnostics if d.rule_id == "DET011"] == []

    def test_configured_digest_sink(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/manifest.py": """\
                def write_manifest(path, payload):
                    return (path, payload)
            """,
            "src/pkg/use.py": """\
                import time

                from pkg.manifest import write_manifest

                def record(path):
                    took = time.monotonic()
                    write_manifest(path, {"took": took})
            """,
        })
        config = _config(
            tmp_path, digest_sinks=("pkg.manifest.write_manifest",)
        )
        diagnostics = _analyze(tmp_path, config)
        det011 = [d for d in diagnostics if d.rule_id == "DET011"]
        assert [(d.symbol, d.line) for d in det011] == [("record", 7)]


class TestDet013WatermarkBypass:
    def _findings(self, tmp_path: Path, source: str, **overrides: object):
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/stages.py": source,
        })
        config = _config(
            tmp_path,
            worker_entry_points=(),
            watermark_commit_functions=("pkg.stages:commit",),
            **overrides,
        )
        graph = ProjectGraph.build(config)
        return check_watermark_bypass(graph, config)

    def test_direct_entry_write_flagged(self, tmp_path: Path) -> None:
        findings = self._findings(tmp_path, """\
            def sneaky(state, day):
                state["watermarks"]["mine"] = day
        """)
        assert [(d.rule_id, d.symbol, d.line) for d in findings] == [
            ("DET013", "sneaky", 2)
        ]
        assert "writes a watermark entry" in findings[0].message
        assert "pkg.stages:commit" in findings[0].message

    def test_commit_function_is_allowed(self, tmp_path: Path) -> None:
        findings = self._findings(tmp_path, """\
            def commit(state, stage, day):
                state["watermarks"][stage] = day
        """)
        assert findings == []

    def test_alias_writes_and_mutating_methods_flagged(
        self, tmp_path: Path
    ) -> None:
        findings = self._findings(tmp_path, """\
            def drift(state, day):
                marks = state["watermarks"]
                marks["engine"] = day
                marks.update(engine=day)
                del marks["mine"]
        """)
        descriptions = sorted(d.message.split(" outside")[0] for d in findings)
        assert descriptions == [
            ".update() mutates the watermark map in place",
            "deletes watermark state",
            "writes a watermark entry",
        ]

    def test_map_replacement_flagged(self, tmp_path: Path) -> None:
        findings = self._findings(tmp_path, """\
            def reset(state):
                state["watermarks"] = {}
        """)
        assert len(findings) == 1
        assert "replaces the watermark map" in findings[0].message

    def test_reads_are_not_flagged(self, tmp_path: Path) -> None:
        findings = self._findings(tmp_path, """\
            def peek(state, stage):
                marks = state["watermarks"]
                return marks.get(stage), state["watermarks"].get("engine")
        """)
        assert findings == []

    def test_runner_gates_project_pass_on_det013(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/stages.py": """\
                def sneaky(state, day):
                    state["watermarks"]["mine"] = day
            """,
        })
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.riskybiz.lint]
            select = ["DET013"]
            watermark-commit-functions = ["pkg.stages:commit"]
        """), encoding="utf-8")
        result = run_lint([tmp_path / "src"], root=tmp_path)
        assert result.project_analyzed
        assert [d.rule_id for d in result.diagnostics] == ["DET013"]


class TestDet012StaleBaseline:
    def test_missing_path_and_dead_symbol_are_stale(
        self, tmp_path: Path
    ) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": "def alive():\n    return 1\n",
        })
        baseline = Baseline(entries=(
            BaselineEntry("DET007", "src/pkg/gone.py", "f", "was removed"),
            BaselineEntry("DET007", "src/pkg/mod.py", "dead", "renamed"),
        ))
        diagnostics, stale = stale_baseline_diagnostics(
            baseline, [], {"src/pkg/mod.py"}, _config(tmp_path)
        )
        assert [(d.rule_id, d.path, d.symbol) for d in diagnostics] == [
            ("DET012", "src/pkg/gone.py", "f"),
            ("DET012", "src/pkg/mod.py", "dead"),
        ]
        assert [e.fingerprint for e in stale] == [
            ("DET007", "src/pkg/gone.py", "f"),
            ("DET007", "src/pkg/mod.py", "dead"),
        ]

    def test_unscanned_live_entry_is_left_alone(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": "def alive():\n    return 1\n",
        })
        baseline = Baseline(entries=(
            BaselineEntry("DET007", "src/pkg/mod.py", "alive", "justified"),
        ))
        # The file exists, the symbol exists, and the file was NOT part
        # of this (narrow) run — the entry must survive.
        diagnostics, stale = stale_baseline_diagnostics(
            baseline, [], set(), _config(tmp_path)
        )
        assert diagnostics == []
        assert stale == []

    def test_stale_entry_fails_lint_until_pruned(self, tmp_path: Path) -> None:
        """Regression: a dead baseline entry is an error, and pruning it
        (what ``--prune-baseline`` does) restores a clean run."""
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": "def alive():\n    return 1\n",
        })
        config = _config(tmp_path)
        baseline = Baseline(entries=(
            BaselineEntry("DET007", "src/pkg/mod.py", "dead_symbol", "stale"),
        ))
        baseline.save(config.baseline_path())

        result = run_lint([tmp_path / "src"], config=config)
        det012 = result.by_rule("DET012")
        assert [(d.path, d.symbol) for d in det012] == [
            ("src/pkg/mod.py", "dead_symbol")
        ]
        assert result.exit_code == 1
        assert [e.fingerprint for e in result.stale_baseline_entries] == [
            ("DET007", "src/pkg/mod.py", "dead_symbol")
        ]

        # Prune exactly the flagged entries and re-run: clean.
        stale = {e.fingerprint for e in result.stale_baseline_entries}
        kept = Baseline(entries=tuple(
            e for e in baseline.entries if e.fingerprint not in stale
        ))
        kept.save(config.baseline_path())
        rerun = run_lint([tmp_path / "src"], config=config)
        assert rerun.exit_code == 0
        assert rerun.by_rule("DET012") == []


class TestRunnerIntegration:
    def _project(self, tmp_path: Path) -> LintConfig:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/worker.py": """\
                from pkg.state import mutate

                def entry(index):
                    mutate()
            """,
            "src/pkg/state.py": """\
                CACHE = {}

                def mutate():
                    CACHE["k"] = 1
            """,
        })
        return _config(tmp_path)

    def test_run_lint_includes_project_rules_when_roots_covered(
        self, tmp_path: Path
    ) -> None:
        config = self._project(tmp_path)
        result = run_lint([tmp_path / "src"], config=config)
        assert result.project_analyzed
        assert [(d.rule_id, d.symbol) for d in result.errors] == [
            ("DET010", "mutate")
        ]

    def test_narrow_run_skips_project_pass(self, tmp_path: Path) -> None:
        config = self._project(tmp_path)
        result = run_lint([tmp_path / "src" / "pkg" / "state.py"], config=config)
        assert not result.project_analyzed
        assert result.by_rule("DET010") == []

    def test_project_finding_can_be_baselined(self, tmp_path: Path) -> None:
        config = self._project(tmp_path)
        baseline = Baseline(entries=(
            BaselineEntry(
                "DET010", "src/pkg/state.py", "mutate", "idempotent init"
            ),
        ))
        result = run_lint([tmp_path / "src"], config=config, baseline=baseline)
        assert result.exit_code == 0
        assert [d.rule_id for d in result.baselined] == ["DET010"]

    def test_parallel_run_matches_inline(self, tmp_path: Path) -> None:
        _write_project(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/a.py": "import random\n\ndef f():\n    return random.random()\n",
            "src/pkg/b.py": "def g(items=[]):\n    return items\n",
            "src/pkg/c.py": "def h(s):\n    return list(set(s))\n",
            "src/pkg/d.py": "def k(x):\n    return hash(x)\n",
        })
        config = _config(tmp_path, worker_entry_points=())
        inline = run_lint([tmp_path / "src"], config=config)
        parallel = run_lint([tmp_path / "src"], config=config, jobs=3)
        assert inline.exit_code == 1
        assert [d.to_dict() for d in inline.diagnostics] == [
            d.to_dict() for d in parallel.diagnostics
        ]
        assert inline.files_scanned == parallel.files_scanned

    def test_graph_dump_shape(self, tmp_path: Path) -> None:
        config = self._project(tmp_path)
        graph = CallGraph.build(ProjectGraph.build(config))
        payload = graph.to_dict()
        assert "src/pkg/state.py" == payload["modules"]["pkg.state"]["path"]  # type: ignore[index]
        assert ["pkg.worker:entry", "pkg.state:mutate"] in payload["edges"]


class TestSelfApplication:
    """The repo's own tree must satisfy the interprocedural rules."""

    def test_repo_project_analysis_is_clean_modulo_baseline(self) -> None:
        from repro.lint.config import load_config

        config = load_config(Path(__file__).resolve().parent.parent)
        diagnostics, project, call_graph = run_project_analysis(config)
        assert not project.parse_failures
        baseline = Baseline.load(config.baseline_path())
        unexplained = [
            d for d in diagnostics if not baseline.suppresses(d)
        ]
        assert unexplained == []
        # The supervisor worker entry points resolve and reach real code.
        for spec in config.worker_entry_points:
            ident = call_graph.resolve_entry(spec)
            assert ident is not None, spec
            assert call_graph.reachable_from([ident])


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
