"""Atomic writes, checksummed manifests, and self-verifying disk state."""

from __future__ import annotations

import json
import os

import pytest

from repro.store.atomic import (
    IntegrityError,
    QUARANTINE_SUFFIX,
    atomic_write_bytes,
    atomic_write_json,
    canonical_json,
    file_sha256,
    load_checked_json,
    payload_checksum,
    quarantine,
    verify_checked_json,
    write_checked_json,
)


class TestAtomicWrite:
    def test_writes_contents(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "file.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "file.bin"
        atomic_write_bytes(target, b"deep")
        assert target.read_bytes() == b"deep"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "file.bin", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["file.bin"]

    def test_json_is_sorted_and_newline_terminated(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')


class TestChecksummedJson:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_checked_json(target, {"kind": "dataset", "count": 3})
        assert verify_checked_json(target) == {"kind": "dataset", "count": 3}

    def test_checksum_covers_canonical_body(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_checked_json(target, {"kind": "dataset"})
        document = json.loads(target.read_text())
        assert document["checksum"] == payload_checksum({"kind": "dataset"})

    def test_tampered_field_detected(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_checked_json(target, {"count": 3})
        document = json.loads(target.read_text())
        document["count"] = 4
        target.write_text(json.dumps(document))
        with pytest.raises(IntegrityError):
            verify_checked_json(target)

    def test_truncated_file_detected(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_checked_json(target, {"count": 3})
        data = target.read_bytes()
        target.write_bytes(data[: len(data) // 2])
        with pytest.raises(IntegrityError):
            verify_checked_json(target)

    def test_missing_checksum_detected(self, tmp_path):
        target = tmp_path / "manifest.json"
        target.write_text('{"count": 3}')
        with pytest.raises(IntegrityError):
            verify_checked_json(target)

    def test_load_quarantines_corrupt(self, tmp_path):
        target = tmp_path / "manifest.json"
        target.write_text("{not json")
        assert load_checked_json(target) is None
        assert not target.exists()
        assert (tmp_path / ("manifest.json" + QUARANTINE_SUFFIX)).exists()

    def test_load_returns_verified_body(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_checked_json(target, {"kind": "x"})
        assert load_checked_json(target) == {"kind": "x"}

    def test_quarantine_numbers_clashes(self, tmp_path):
        for _ in range(3):
            target = tmp_path / "f.json"
            target.write_text("junk")
            quarantine(target)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["f.json.corrupt", "f.json.corrupt.1", "f.json.corrupt.2"]

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_file_sha256_streams(self, tmp_path):
        target = tmp_path / "big.bin"
        target.write_bytes(os.urandom(3 * (1 << 20)))
        import hashlib

        assert file_sha256(target) == hashlib.sha256(target.read_bytes()).hexdigest()


class TestDatasetManifestIntegrity:
    """Dataset manifests verify on open and self-heal from corruption."""

    @pytest.fixture(scope="class")
    def dataset(self, tmp_path_factory, tiny_bundle):
        from repro.store.dataset import write_dataset

        path = tmp_path_factory.mktemp("ds") / "dataset.sqlite"
        write_dataset(
            tiny_bundle.world.zonedb, path, scenario_digest="ab" * 32
        )
        return path

    def test_manifest_records_dataset_hash(self, dataset):
        from repro.store.dataset import load_manifest

        manifest = load_manifest(dataset)
        assert manifest["dataset_sha256"] == file_sha256(dataset)

    def test_corrupt_manifest_quarantined_and_rebuilt(self, dataset):
        from repro.store.dataset import load_manifest, manifest_path, open_dataset

        sidecar = manifest_path(dataset)
        original = load_manifest(dataset)
        sidecar.write_text(sidecar.read_text().replace('"domains"', '"d0mains"'))
        zonedb = open_dataset(dataset)
        try:
            rebuilt = load_manifest(dataset)
        finally:
            zonedb.store.close()
        assert rebuilt == original
        quarantined = list(sidecar.parent.glob("*" + QUARANTINE_SUFFIX + "*"))
        assert quarantined
        for stray in quarantined:  # leave the fixture clean for other tests
            stray.unlink()

    def test_missing_manifest_rebuilt(self, dataset):
        from repro.store.dataset import load_manifest, manifest_path

        sidecar = manifest_path(dataset)
        original = load_manifest(dataset)
        sidecar.unlink()
        assert load_manifest(dataset) == original
        assert sidecar.exists()


class TestArtifactDiskIntegrity:
    """Disk cache entries carry and enforce their own content hashes."""

    def _cache(self, root):
        from repro.store.artifacts import ArtifactCache

        return ArtifactCache(root=root)

    def _key(self):
        from repro.store.artifacts import ArtifactKey

        return ArtifactKey.build("unit", "ff" * 32, {"n": 1})

    def test_manifest_checksummed_and_hash_recorded(self, tmp_path):
        cache = self._cache(tmp_path)
        key = self._key()
        cache.put(key, {"value": 41})
        manifest = verify_checked_json(cache.manifest_path(key))
        artifact = tmp_path / manifest["artifact"]
        assert manifest["artifact_sha256"] == file_sha256(artifact)

    def test_corrupted_artifact_is_a_miss_and_quarantined(self, tmp_path):
        cache = self._cache(tmp_path)
        key = self._key()
        cache.put(key, {"value": 41})
        artifact = tmp_path / f"{key.basename}.pkl"
        artifact.write_bytes(artifact.read_bytes()[:-2] + b"xx")
        fresh = self._cache(tmp_path)
        assert fresh.get(key) is None
        assert list(tmp_path.glob("*" + QUARANTINE_SUFFIX + "*"))

    def test_clean_entry_round_trips(self, tmp_path):
        cache = self._cache(tmp_path)
        key = self._key()
        cache.put(key, {"value": 41})
        assert self._cache(tmp_path).get(key) == {"value": 41}
