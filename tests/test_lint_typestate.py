"""Engine 4: protocol automata positives/negatives and the fixed point."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import LintConfig, lint_typestate_source, run_lint
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.registry import RULES

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings(
    source: str, path: str = "src/repro/store/example.py"
) -> list[tuple[str, int]]:
    diags = lint_typestate_source(textwrap.dedent(source), path, LintConfig())
    return [(d.rule_id, d.line) for d in diags]


class TestRegistry:
    def test_typestate_rules_registered(self) -> None:
        for rule_id in ("DET014", "DET015", "DET016", "DET017"):
            assert RULES[rule_id].engine == "typestate"


class TestSpanLifecycle:
    def test_span_leaked_via_early_raise(self) -> None:
        found = findings("""
            def f(tracer, risky):
                ctx = tracer.span("stage")
                ctx.__enter__()
                risky()  # may raise: the span never reaches __exit__
                ctx.__exit__(None, None, None)
        """)
        assert found == [("DET014", 3)]

    def test_span_never_exited_at_all(self) -> None:
        found = findings("""
            def f(tracer, work):
                ctx = tracer.span("stage")
                ctx.__enter__()
                work()
        """)
        # Leaked on the normal exit and on the exception exit (if
        # work() raises, the span is still entered when f unwinds).
        assert [rule for rule, _ in found] == ["DET014", "DET014"]

    def test_try_finally_exit_is_clean(self) -> None:
        assert findings("""
            def f(tracer, risky):
                ctx = tracer.span("stage")
                ctx.__enter__()
                try:
                    risky()
                finally:
                    ctx.__exit__(None, None, None)
        """) == []

    def test_with_statement_is_clean(self) -> None:
        assert findings("""
            def f(tracer, work):
                with tracer.span("stage"):
                    work()
        """) == []

    def test_tracer_use_after_close(self) -> None:
        found = findings("""
            def f(path):
                tracer = Tracer.open_or_create(path, "run")
                tracer.close()
                tracer.event("late")
        """)
        assert found == [("DET014", 5)]

    def test_tracer_close_in_finally_is_clean(self) -> None:
        assert findings("""
            def f(path, work):
                tracer = Tracer.open_or_create(path, "run")
                try:
                    work(tracer)
                finally:
                    tracer.close()
        """) == []


class TestJournalDiscipline:
    def test_append_after_close(self) -> None:
        found = findings("""
            def f(path):
                journal = RunJournal.open(path)
                journal.close()
                journal.append("late")
        """)
        assert found == [("DET015", 5)]

    def test_balanced_lifecycle_is_clean(self) -> None:
        assert findings("""
            def f(path):
                journal = RunJournal.open(path)
                journal.append("early")
                journal.close()
        """) == []

    def test_reconcile_event_outside_window(self) -> None:
        found = findings(
            """
            def helper(journal):
                journal.append("engine-reset", reason="stale")
            """,
            path="src/repro/runner/other.py",
        )
        assert found == [("DET015", 3)]

    def test_reconcile_event_in_sanctioned_function_is_clean(self) -> None:
        assert findings(
            """
            def _restore_engine(journal):
                journal.append("engine-reset", reason="digest mismatch")
            """,
            path="src/repro/runner/execution.py",
        ) == []


class TestAtomicProtocol:
    def test_rename_without_fsync(self) -> None:
        found = findings("""
            import os, pickle

            def save(point, point_path):
                temp = point_path.with_suffix(".tmp")
                with open(temp, "wb") as handle:
                    pickle.dump(point, handle)
                os.replace(temp, point_path)
        """)
        assert found == [("DET016", 8)]

    def test_full_protocol_is_clean(self) -> None:
        assert findings("""
            import os

            def atomic_write_bytes(target, data):
                temp = target.with_name(target.name + TMP_SUFFIX)
                with open(temp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, target)
                return target
        """) == []

    def test_temp_left_dirty_on_exit(self) -> None:
        found = findings("""
            def save(data, target):
                temp = target.with_suffix(".tmp")
                with open(temp, "wb") as handle:
                    handle.write(data)
        """)
        assert found == [("DET016", 3)]

    def test_target_written_after_publish(self) -> None:
        found = findings("""
            import os

            def save(data, target):
                temp = target.with_suffix(".tmp")
                with open(temp, "wb") as handle:
                    handle.write(data)
                    os.fsync(handle.fileno())
                os.replace(temp, target)
                target.write_text("oops")
        """)
        assert found == [("DET016", 10)]

    def test_files_outside_protocol_paths_are_ignored(self) -> None:
        assert findings(
            """
            import os

            def save(data, target):
                temp = target.with_suffix(".tmp")
                with open(temp, "wb") as handle:
                    handle.write(data)
                os.replace(temp, target)
            """,
            path="scripts/oneoff.py",
        ) == []


class TestCheckpointOrder:
    def test_commit_before_checkpoint(self) -> None:
        found = findings(
            """
            def advance(zonedb, days, consumer):
                for day in days:
                    zonedb.commit_watermark(consumer, day)
            """,
            path="src/repro/detection/example.py",
        )
        assert found == [("DET017", 4)]

    def test_checkpoint_dominates_commit_is_clean(self) -> None:
        assert findings(
            """
            def advance(engine, zonedb, days, consumer, path):
                for day in days:
                    atomic_write_bytes(path, dump_engine_state(engine))
                    zonedb.commit_watermark(consumer, day)
            """,
            path="src/repro/detection/example.py",
        ) == []

    def test_bare_name_stage_helper_is_exempt(self) -> None:
        # The module-level helper is the sanctioned DET013 commit path.
        assert findings(
            """
            def fold(state, stage, day):
                commit_watermark(state, stage, day)
            """,
            path="src/repro/detection/example.py",
        ) == []


class TestRunnerIntegration:
    @staticmethod
    def _violating_tree(root: Path) -> None:
        (root / "src" / "repro" / "store").mkdir(parents=True)
        (root / "src" / "repro" / "store" / "save.py").write_text(
            textwrap.dedent("""
                import os, pickle

                def save(point, path):
                    temp = path.with_suffix(".tmp")
                    with open(temp, "wb") as handle:
                        pickle.dump(point, handle)
                    os.replace(temp, path)
            """),
            encoding="utf-8",
        )
        (root / "src" / "repro" / "obs").mkdir(parents=True)
        (root / "src" / "repro" / "obs" / "trace.py").write_text(
            textwrap.dedent("""
                def f(path):
                    tracer = Tracer.open_or_create(path, "run")
                    tracer.close()
                    tracer.event("late")
            """),
            encoding="utf-8",
        )

    def test_run_lint_surfaces_typestate_findings(self, tmp_path: Path) -> None:
        self._violating_tree(tmp_path)
        result = run_lint([tmp_path / "src"], config=LintConfig(root=tmp_path))
        assert [d.rule_id for d in result.by_rule("DET016")] == ["DET016"]
        assert [d.rule_id for d in result.by_rule("DET014")] == ["DET014"]

    def test_parallel_matches_inline(self, tmp_path: Path) -> None:
        self._violating_tree(tmp_path)
        config = LintConfig(root=tmp_path)
        inline = run_lint([tmp_path / "src"], config=config)
        parallel = run_lint([tmp_path / "src"], config=config, jobs=3)
        assert [d.to_dict() for d in inline.diagnostics] == [
            d.to_dict() for d in parallel.diagnostics
        ]
        assert inline.files_scanned == parallel.files_scanned

    def test_select_can_skip_the_typestate_engine(self, tmp_path: Path) -> None:
        self._violating_tree(tmp_path)
        result = run_lint(
            [tmp_path / "src"],
            config=LintConfig(root=tmp_path),
            select=["DET001"],
        )
        assert result.by_rule("DET016") == []
        assert result.by_rule("DET014") == []

    def test_narrow_select_never_condemns_other_engines_baseline(
        self, tmp_path: Path
    ) -> None:
        self._violating_tree(tmp_path)
        baseline = Baseline(entries=[
            BaselineEntry(
                rule="DET016",
                path="src/repro/store/save.py",
                symbol="save",
                reason="known: fixture trades durability for speed",
            ),
        ])
        # A code-engine-only run evaluates no typestate rule; the live
        # DET016 entry must not be reported stale (latent-prune guard).
        result = run_lint(
            [tmp_path / "src"],
            config=LintConfig(root=tmp_path),
            baseline=baseline,
            select=["DET001"],
        )
        assert result.stale_baseline_entries == []


class TestFixedPoint:
    def test_repository_is_lint_clean(self) -> None:
        result = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], root=REPO_ROOT
        )
        assert result.exit_code == 0, [
            d.to_dict() for d in result.errors
        ]
