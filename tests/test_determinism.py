"""Determinism guarantees: same seed, same world — faults or no faults.

Two claims are pinned down here:

1. Running the same scenario twice produces byte-identical observables
   (zone archives, WHOIS dumps, interval histories).
2. Fault injection operates strictly on the world's *outputs*, drawing
   from its own named RNG streams — so enabling faults (or changing one
   fault class's rate) never perturbs the base world, and never
   perturbs the draws of another fault class.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest

from repro.ecosystem.config import default_scenario
from repro.ecosystem.world import World
from repro.faults import (
    FaultConfig,
    SnapshotFaultInjector,
    degrade_world,
    snapshot_stream,
    stream_rng,
)

SCALE = 0.05


def _build(faults: FaultConfig | None = None):
    config = default_scenario(2021).scaled(SCALE)
    if faults is not None:
        config = replace(config, faults=faults)
    return World(config).run()


def _fingerprint(result) -> str:
    """A byte-level digest of every observable a run produces."""
    digest = hashlib.sha256()
    for line in result.whois.to_json_lines():
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    records = sorted(
        (r.domain, r.ns, r.start, -1 if r.end is None else r.end)
        for domain in result.zonedb.all_domains()
        for r in result.zonedb.domain_records(domain)
    )
    digest.update(repr(records).encode("utf-8"))
    for tld in sorted(result.zonedb.covered_tlds):
        snapshot = result.zonedb.snapshot_at(result.config.end_day - 1, tld)
        digest.update(snapshot.to_zone().to_text().encode("ascii"))
    return digest.hexdigest()


@pytest.fixture(scope="module")
def pristine():
    return _build()


def test_same_seed_is_byte_identical(pristine):
    assert _fingerprint(_build()) == _fingerprint(pristine)


def test_enabling_faults_never_perturbs_the_base_world(pristine):
    faulted = _build(FaultConfig.uniform(0.25, seed=99))
    assert _fingerprint(faulted) == _fingerprint(pristine)


def test_degrading_does_not_mutate_the_world(pristine):
    before = _fingerprint(pristine)
    degrade_world(pristine, FaultConfig.uniform(0.2, seed=7), every=30)
    assert _fingerprint(pristine) == before


def test_degradation_is_deterministic(pristine):
    config = FaultConfig.uniform(0.15, seed=11)
    first = degrade_world(pristine, config, every=30)
    second = degrade_world(pristine, config, every=30)
    assert first.snapshot_log == second.snapshot_log
    assert first.whois_log == second.whois_log
    first_records = sorted(
        (r.domain, r.ns, r.start, r.end)
        for d in first.zonedb.all_domains()
        for r in first.zonedb.domain_records(d)
    )
    second_records = sorted(
        (r.domain, r.ns, r.start, r.end)
        for d in second.zonedb.all_domains()
        for r in second.zonedb.domain_records(d)
    )
    assert first_records == second_records
    assert list(first.whois.to_json_lines()) == list(second.whois.to_json_lines())


def test_fault_classes_draw_from_independent_streams(pristine):
    """Raising the WHOIS rates must not reshuffle snapshot faults."""
    snapshots = snapshot_stream(
        pristine.zonedb, every=30, end_day=pristine.config.end_day
    )
    base = FaultConfig(seed=5, snapshot_drop_rate=0.2, snapshot_truncate_rate=0.1)
    with_whois = replace(base, whois_gap_rate=0.5, whois_stale_rate=0.5)
    first = SnapshotFaultInjector(base)
    first.degrade(snapshots)
    second = SnapshotFaultInjector(with_whois)
    second.degrade(snapshots)
    assert first.log == second.log


def test_named_streams_are_stable_and_independent():
    solo = stream_rng(42, "snapshot.drop")
    reference = [solo.random() for _ in range(5)]
    # Interleaving draws from other streams cannot shift this stream.
    alpha = stream_rng(42, "snapshot.drop")
    beta = stream_rng(42, "whois.gap")
    interleaved = []
    for _ in range(5):
        beta.random()
        interleaved.append(alpha.random())
    assert interleaved == reference
    # Distinct names and distinct seeds give distinct streams.
    assert stream_rng(42, "whois.gap").random() != reference[0]
    assert stream_rng(43, "snapshot.drop").random() != reference[0]


def test_zone_archive_bytes_are_reproducible(pristine, tmp_path):
    from repro.zonedb.archive import write_archive

    days = [0, pristine.config.end_day - 1]
    snapshots = [
        pristine.zonedb.snapshot_at(day, tld)
        for day in days
        for tld in sorted(pristine.zonedb.covered_tlds)
    ]
    first = write_archive(tmp_path / "a", snapshots)
    second = write_archive(tmp_path / "b", snapshots)
    assert [p.read_bytes() for p in first] == [p.read_bytes() for p in second]

    whois_a = tmp_path / "a.jsonl"
    whois_b = tmp_path / "b.jsonl"
    pristine.whois.dump(whois_a)
    pristine.whois.dump(whois_b)
    assert whois_a.read_bytes() == whois_b.read_bytes()
