"""Tests for DNS resource records."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.errors import DnsError
from repro.dnscore.records import (
    ResourceRecord,
    RRSet,
    RRType,
    a_record,
    ns_record,
    soa_record,
)


class TestConstruction:
    def test_ns_rdata_normalized(self):
        record = ResourceRecord("Example.COM", RRType.NS, "NS1.Foo.COM.")
        assert record.name == "example.com"
        assert record.rdata == "ns1.foo.com"

    def test_a_record_valid(self):
        record = a_record("ns1.foo.com", "192.0.2.1")
        assert record.rdata == "192.0.2.1"

    def test_a_record_rejects_garbage(self):
        with pytest.raises(ValueError):
            a_record("ns1.foo.com", "not-an-ip")

    def test_a_record_rejects_ipv6(self):
        with pytest.raises(DnsError):
            a_record("ns1.foo.com", "2001:db8::1")

    def test_aaaa_record_rejects_ipv4(self):
        with pytest.raises(DnsError):
            ResourceRecord("h.foo.com", RRType.AAAA, "192.0.2.1")

    def test_aaaa_record_valid(self):
        record = ResourceRecord("h.foo.com", RRType.AAAA, "2001:db8::1")
        assert record.rdata == "2001:db8::1"

    def test_negative_ttl_rejected(self):
        with pytest.raises(DnsError):
            ResourceRecord("foo.com", RRType.NS, "ns1.bar.com", ttl=-1)

    def test_soa_helper(self):
        record = soa_record("com", "a.nic.com", "hostmaster.nic.com", 42)
        assert record.rtype is RRType.SOA
        assert "42" in record.rdata


class TestSerialization:
    def test_to_line_format(self):
        record = ns_record("example.com", "ns1.foo.com", ttl=3600)
        assert record.to_line() == "example.com. 3600 IN NS ns1.foo.com"

    def test_round_trip_ns(self):
        record = ns_record("example.com", "ns1.foo.com")
        assert ResourceRecord.from_line(record.to_line()) == record

    def test_round_trip_a(self):
        record = a_record("ns1.foo.com", "192.0.2.7", ttl=60)
        assert ResourceRecord.from_line(record.to_line()) == record

    def test_from_line_rejects_malformed(self):
        with pytest.raises(DnsError):
            ResourceRecord.from_line("too few fields")

    def test_from_line_rejects_bad_class(self):
        with pytest.raises(DnsError):
            ResourceRecord.from_line("a.com 60 CH NS ns1.b.com")

    def test_from_line_rejects_bad_ttl(self):
        with pytest.raises(DnsError):
            ResourceRecord.from_line("a.com soon IN NS ns1.b.com")

    def test_from_line_rejects_unknown_type(self):
        with pytest.raises(DnsError):
            ResourceRecord.from_line("a.com 60 IN MX 10 mail.b.com")

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
            min_size=2,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=86400),
    )
    def test_round_trip_property(self, labels, ttl):
        record = ns_record(".".join(labels), "ns1.example.com", ttl=ttl)
        assert ResourceRecord.from_line(record.to_line()) == record


class TestRRSet:
    def test_rdatas_in_order(self):
        records = (
            ns_record("a.com", "ns1.x.com"),
            ns_record("a.com", "ns2.x.com"),
        )
        rrset = RRSet("a.com", RRType.NS, records)
        assert rrset.rdatas() == ("ns1.x.com", "ns2.x.com")
        assert len(rrset) == 2
