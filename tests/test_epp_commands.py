"""Tests for the EPP session/command façade."""

import pytest

from repro.epp.errors import ResultCode
from repro.epp.commands import EppSession
from repro.epp.repository import EppRepository


@pytest.fixture()
def session():
    repo = EppRepository("sim-verisign", ["com", "net"])
    return EppSession(repo, "regA")


class TestResults:
    def test_success_result(self, session):
        result = session.domain_create("foo.com", day=0)
        assert result.ok
        assert result.code is ResultCode.OK
        assert result.message == "Command completed successfully"

    def test_error_result_not_exception(self, session):
        result = session.domain_delete("ghost.com", day=0)
        assert not result.ok
        assert result.code is ResultCode.OBJECT_DOES_NOT_EXIST
        assert "ghost.com" in result.detail

    def test_check_available(self, session):
        assert session.domain_check("foo.com").data is True
        session.domain_create("foo.com", day=0)
        assert session.domain_check("foo.com").data is False

    def test_info_returns_object(self, session):
        session.domain_create("foo.com", day=3)
        result = session.domain_info("foo.com")
        assert result.ok
        assert result.data.created == 3

    def test_host_info(self, session):
        session.domain_create("foo.com", day=0)
        session.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
        assert session.host_info("ns1.foo.com").data.superordinate == "foo.com"


class TestSessionIdentity:
    def test_sponsor_is_bound(self, session):
        """A session cannot act as another registrar."""
        session.domain_create("foo.com", day=0)
        other = EppSession(session.repository, "regB")
        result = other.domain_delete("foo.com", day=1)
        assert result.code is ResultCode.AUTHORIZATION_ERROR


class TestTranscript:
    def test_transcript_records_everything(self, session):
        session.domain_create("foo.com", day=0)
        session.domain_delete("ghost.com", day=1)
        assert [e.command for e in session.transcript] == [
            "domain:create", "domain:delete",
        ]
        assert [e.day for e in session.transcript] == [0, 1]

    def test_failures_filter(self, session):
        session.domain_create("foo.com", day=0)
        session.domain_delete("ghost.com", day=1)
        failures = session.failures()
        assert len(failures) == 1
        assert failures[0].command == "domain:delete"


class TestHostCommands:
    def test_rename_flow(self, session):
        session.domain_create("foo.com", day=0)
        session.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
        session.domain_create("bar.com", day=0, nameservers=["ns1.foo.com"])
        rename = session.host_rename("ns1.foo.com", "x.biz", day=1)
        assert rename.ok
        assert session.repository.domain("bar.com").nameservers == ["x.biz"]

    def test_set_addresses(self, session):
        session.domain_create("foo.com", day=0)
        session.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
        result = session.host_set_addresses("ns1.foo.com", ["192.0.2.9"], day=1)
        assert result.ok
        assert session.repository.host("ns1.foo.com").addresses == {"192.0.2.9"}

    def test_renew(self, session):
        session.domain_create("foo.com", day=0, period_years=1)
        result = session.domain_renew("foo.com", day=10, period_years=1)
        assert result.ok
        assert session.repository.domain("foo.com").expires == 730

    def test_update_ns(self, session):
        session.domain_create("foo.com", day=0)
        session.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
        session.domain_create("bar.com", day=0)
        result = session.domain_update_ns("bar.com", day=1, add=["ns1.foo.com"])
        assert result.ok
        assert session.repository.domain("bar.com").nameservers == ["ns1.foo.com"]
