"""Code lint engine: per-rule positives/negatives and the CLI gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    lint_code_source,
    run_lint,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.registry import RULES, validate_rule_ids


REPO_ROOT = Path(__file__).resolve().parent.parent


def rule_ids(source: str, path: str = "src/repro/example.py") -> list[str]:
    diags = lint_code_source(textwrap.dedent(source), path, LintConfig())
    return [d.rule_id for d in diags]


class TestUnseededRng:
    def test_module_level_random_flagged(self):
        assert rule_ids("import random\nrandom.random()\n") == ["DET001"]

    def test_module_level_choice_flagged(self):
        assert rule_ids("import random\nrandom.choice([1, 2])\n") == ["DET001"]

    def test_from_import_function_flagged(self):
        assert rule_ids(
            "from random import shuffle\nshuffle([1, 2])\n"
        ) == ["DET001"]

    def test_unseeded_random_instance_flagged(self):
        assert rule_ids("import random\nrng = random.Random()\n") == ["DET001"]

    def test_unseeded_from_import_class_flagged(self):
        assert rule_ids("from random import Random\nrng = Random()\n") == [
            "DET001"
        ]

    def test_seeded_instance_clean(self):
        assert rule_ids("import random\nrng = random.Random(42)\n") == []

    def test_aliased_module_tracked(self):
        assert rule_ids("import random as rnd\nrnd.randint(0, 9)\n") == [
            "DET001"
        ]

    def test_method_on_instance_clean(self):
        source = """
        import random

        def draw(rng: random.Random) -> float:
            return rng.random()
        """
        assert rule_ids(source) == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert rule_ids("import time\nt = time.time()\n") == ["DET002"]

    def test_from_import_time_flagged(self):
        assert rule_ids("from time import time\nt = time()\n") == ["DET002"]

    def test_datetime_now_flagged(self):
        assert rule_ids(
            "from datetime import datetime\nd = datetime.now()\n"
        ) == ["DET002"]

    def test_module_qualified_now_flagged(self):
        assert rule_ids(
            "import datetime\nd = datetime.datetime.now()\n"
        ) == ["DET002"]

    def test_date_today_flagged(self):
        assert rule_ids("from datetime import date\nd = date.today()\n") == [
            "DET002"
        ]

    def test_monotonic_not_wall_clock(self):
        # DET009, not DET002: a duration clock, not a wall clock.
        assert rule_ids("import time\nt = time.monotonic()\n") == ["DET009"]

    def test_constructed_datetime_clean(self):
        assert rule_ids(
            "import datetime\nd = datetime.date(2011, 4, 1)\n"
        ) == []


class TestFaultStreamRng:
    def test_seeded_random_in_fault_layer_flagged(self):
        assert rule_ids(
            "import random\nrng = random.Random(7)\n",
            path="src/repro/faults/drops.py",
        ) == ["DET003"]

    def test_rng_module_itself_exempt(self):
        assert rule_ids(
            "import random\nrng = random.Random(7)\n",
            path="src/repro/faults/rng.py",
        ) == []

    def test_seeded_random_outside_fault_layer_clean(self):
        assert rule_ids(
            "import random\nrng = random.Random(7)\n",
            path="src/repro/ecosystem/world.py",
        ) == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        assert rule_ids("for x in {1, 2, 3}:\n    print(x)\n") == ["DET004"]

    def test_for_over_tracked_set_name_flagged(self):
        source = """
        def emit(items):
            seen = set(items)
            return [x for x in seen]
        """
        assert rule_ids(source) == ["DET004"]

    def test_set_difference_flagged(self):
        source = """
        def diff(a, b):
            for x in set(a) - set(b):
                print(x)
        """
        assert rule_ids(source) == ["DET004"]

    def test_list_of_set_flagged(self):
        assert rule_ids("names = list({'a', 'b'})\n") == ["DET004"]

    def test_join_of_set_flagged(self):
        assert rule_ids("text = ','.join({'a', 'b'})\n") == ["DET004"]

    def test_sorted_set_clean(self):
        assert rule_ids("for x in sorted({1, 2, 3}):\n    print(x)\n") == []

    def test_for_over_list_clean(self):
        assert rule_ids("for x in [3, 1, 2]:\n    print(x)\n") == []

    def test_membership_test_clean(self):
        source = """
        def keep(items, allowed):
            allowed_set = set(allowed)
            return [x for x in items if x in allowed_set]
        """
        assert rule_ids(source) == []


class TestFloatEquality:
    ANALYSIS = "src/repro/analysis/tables.py"

    def test_eq_against_float_flagged_in_analysis(self):
        assert rule_ids("ok = rate == 0.25\n", path=self.ANALYSIS) == [
            "DET005"
        ]

    def test_neq_against_float_flagged_in_analysis(self):
        assert rule_ids("ok = 0.5 != rate\n", path=self.ANALYSIS) == ["DET005"]

    def test_inequality_clean_in_analysis(self):
        assert rule_ids("ok = rate <= 0.25\n", path=self.ANALYSIS) == []

    def test_int_equality_clean_in_analysis(self):
        assert rule_ids("ok = count == 3\n", path=self.ANALYSIS) == []

    def test_float_eq_outside_analysis_not_flagged(self):
        assert rule_ids("ok = rate == 0.25\n") == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert rule_ids("def f(items=[]):\n    return items\n") == ["DET006"]

    def test_dict_call_default_flagged(self):
        assert rule_ids("def f(table=dict()):\n    return table\n") == [
            "DET006"
        ]

    def test_kwonly_set_default_flagged(self):
        assert rule_ids("def f(*, seen={1}):\n    return seen\n") == ["DET006"]

    def test_none_default_clean(self):
        assert rule_ids("def f(items=None):\n    return items or []\n") == []

    def test_tuple_default_clean(self):
        assert rule_ids("def f(items=()):\n    return items\n") == []


class TestProcessHash:
    def test_hash_call_flagged(self):
        assert rule_ids("key = hash('example.com')\n") == ["DET007"]

    def test_hash_inside_dunder_hash_exempt(self):
        source = """
        class Name:
            def __hash__(self):
                return hash(self.text)
        """
        assert rule_ids(source) == []

    def test_stable_hash_clean(self):
        assert rule_ids(
            "from repro.faults.rng import stable_hash\n"
            "key = stable_hash('example.com')\n"
        ) == []


class TestNonAtomicWrite:
    STORE_PATH = "src/repro/store/example.py"

    def test_write_text_in_store_flagged(self):
        assert rule_ids(
            "path.write_text('data')\n", path=self.STORE_PATH
        ) == ["DET008"]

    def test_write_bytes_in_runner_flagged(self):
        assert rule_ids(
            "path.write_bytes(b'data')\n", path="src/repro/runner/example.py"
        ) == ["DET008"]

    def test_open_for_write_flagged(self):
        assert rule_ids(
            "handle = open('manifest.json', 'w')\n", path=self.STORE_PATH
        ) == ["DET008"]

    def test_open_append_flagged(self):
        assert rule_ids(
            "handle = open('journal.jsonl', mode='ab')\n", path=self.STORE_PATH
        ) == ["DET008"]

    def test_path_open_write_flagged(self):
        assert rule_ids(
            "handle = path.open('wb')\n", path=self.STORE_PATH
        ) == ["DET008"]

    def test_open_for_read_clean(self):
        assert rule_ids(
            "data = open('manifest.json').read()\n"
            "more = open('dataset.sqlite', 'rb').read()\n",
            path=self.STORE_PATH,
        ) == []

    def test_read_helpers_clean(self):
        assert rule_ids(
            "data = path.read_bytes()\ntext = path.read_text()\n",
            path=self.STORE_PATH,
        ) == []

    def test_atomic_helper_module_exempt(self):
        assert rule_ids(
            "handle = open('x.tmp', 'wb')\n", path="src/repro/store/atomic.py"
        ) == []

    def test_journal_module_exempt(self):
        assert rule_ids(
            "handle = open('journal.jsonl', 'ab')\n",
            path="src/repro/runner/journal.py",
        ) == []

    def test_outside_durability_layer_clean(self):
        assert rule_ids(
            "path.write_text('csv,data')\n", path="src/repro/analysis/export.py"
        ) == []

    def test_repo_tree_routes_writes_atomically(self):
        """The real storage/runner tree carries no unbaselined DET008."""
        result = run_lint(
            ["src/repro/store", "src/repro/runner", "src/repro/detection"],
            root=REPO_ROOT,
            select=["DET008"],
        )
        assert result.errors == []


class TestTelemetryRead:
    def test_perf_counter_flagged_in_src(self):
        assert rule_ids("import time\nt = time.perf_counter()\n") == [
            "DET009"
        ]

    def test_from_import_monotonic_flagged(self):
        assert rule_ids(
            "from time import monotonic\nt = monotonic()\n"
        ) == ["DET009"]

    def test_aliased_duration_fn_flagged(self):
        assert rule_ids(
            "from time import perf_counter as pc\nt = pc()\n"
        ) == ["DET009"]

    def test_tracemalloc_module_flagged(self):
        assert rule_ids(
            "import tracemalloc\ntracemalloc.start()\n"
        ) == ["DET009"]

    def test_tracemalloc_from_import_flagged(self):
        assert rule_ids(
            "from tracemalloc import start\nstart()\n"
        ) == ["DET009"]

    def test_obs_layer_exempt(self):
        assert rule_ids(
            "import time\nt = time.perf_counter()\n",
            path="src/repro/obs/clock.py",
        ) == []

    def test_obs_submodule_exempt(self):
        assert rule_ids(
            "import tracemalloc\ntracemalloc.start()\n",
            path="src/repro/obs/profiling.py",
        ) == []

    def test_outside_scope_clean(self):
        assert rule_ids(
            "import time\nt = time.monotonic()\n", path="tests/test_x.py"
        ) == []

    def test_obs_clock_wrapper_clean(self):
        assert rule_ids(
            "from repro.obs import clock\nt = clock.monotonic()\n"
        ) == []

    def test_time_sleep_clean(self):
        # sleep is not a clock read; backoff waits stay legal anywhere.
        assert rule_ids("import time\ntime.sleep(0.1)\n") == []

    def test_repo_tree_routes_clock_reads_through_obs(self):
        """The real src tree carries no unbaselined DET009."""
        result = run_lint(["src/repro"], root=REPO_ROOT, select=["DET009"])
        assert result.errors == []


class TestParseError:
    def test_syntax_error_reported_as_det000(self):
        assert rule_ids("def broken(:\n") == ["DET000"]


class TestCatalogue:
    def test_rule_ids_consistent(self):
        validate_rule_ids(RULES)
        with pytest.raises(ValueError):
            validate_rule_ids(["DET999"])

    def test_every_det_rule_documented(self):
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                        "DET006", "DET007", "DET008", "DET009"):
            assert rule_id in RULES
            assert RULES[rule_id].engine == "code"


class TestRunner:
    def test_runner_scans_tree_and_baselines(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import random\nrandom.random()\n", encoding="utf-8"
        )
        (tmp_path / "good.py").write_text("VALUE = 3\n", encoding="utf-8")
        result = run_lint([tmp_path], root=tmp_path)
        assert [d.rule_id for d in result.diagnostics] == ["DET001"]
        assert result.exit_code == 1

        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule="DET001",
                    path="bad.py",
                    symbol="<module>",
                    reason="fixture exercising the baseline",
                )
            ]
        )
        baseline.save(tmp_path / "lint-baseline.json")
        rebased = run_lint([tmp_path], root=tmp_path)
        assert rebased.diagnostics == []
        assert len(rebased.baselined) == 1
        assert rebased.exit_code == 0

    def test_stale_baseline_entries_reported(self, tmp_path):
        (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
        Baseline(
            entries=[
                BaselineEntry(
                    rule="DET001",
                    path="gone.py",
                    symbol="<module>",
                    reason="no longer exists",
                )
            ]
        ).save(tmp_path / "lint-baseline.json")
        result = run_lint([tmp_path], root=tmp_path)
        assert len(result.stale_baseline_entries) == 1
        # Since DET012, a dead entry is itself an error until pruned
        # (riskybiz lint --prune-baseline drops it).
        assert [d.rule_id for d in result.diagnostics] == ["DET012"]
        assert result.exit_code == 1


class TestCli:
    def _run(self, args: list[str], cwd: Path) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=env, capture_output=True, text=True,
        )

    def test_cli_fails_on_violating_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        proc = self._run(["lint", "bad.py"], cwd=tmp_path)
        assert proc.returncode == 1
        assert "DET002" in proc.stdout

    def test_cli_passes_on_repo_tree(self):
        proc = self._run(["lint", "src", "tests"], cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 error(s)" in proc.stdout

    def test_cli_json_format(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "key = hash('x')\n", encoding="utf-8"
        )
        proc = self._run(["lint", "--format", "json", "bad.py"], cwd=tmp_path)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [d["rule"] for d in payload["diagnostics"]] == ["DET007"]

    def test_cli_select_filters_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\nkey = hash('x')\n",
            encoding="utf-8",
        )
        proc = self._run(
            ["lint", "--select", "DET007", "bad.py"], cwd=tmp_path
        )
        assert proc.returncode == 1
        assert "DET007" in proc.stdout
        assert "DET002" not in proc.stdout

    def test_cli_write_baseline_then_clean(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import random\nrandom.random()\n", encoding="utf-8"
        )
        recorded = self._run(["lint", "--write-baseline", "bad.py"], cwd=tmp_path)
        assert recorded.returncode == 0
        assert (tmp_path / "lint-baseline.json").exists()
        proc = self._run(["lint", "bad.py"], cwd=tmp_path)
        assert proc.returncode == 0
        assert "1 baselined" in proc.stdout
