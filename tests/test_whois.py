"""Tests for the WHOIS history archive."""

import pytest

from repro.whois.archive import REDACTED, WhoisArchive


@pytest.fixture()
def archive():
    whois = WhoisArchive()
    whois.record_registration(
        "foo.com", "godaddy", day=0, period_years=2, registrant="Alice"
    )
    return whois


class TestEpochs:
    def test_registration_recorded(self, archive):
        record = archive.current("foo.com", 10)
        assert record is not None
        assert record.registrar == "godaddy"
        assert record.expires == 730

    def test_renewal_extends(self, archive):
        archive.record_renewal("foo.com", day=100, period_years=1)
        assert archive.current("foo.com", 100).expires == 730 + 365

    def test_deletion_closes_epoch(self, archive):
        archive.record_deletion("foo.com", day=50)
        assert archive.current("foo.com", 50) is None
        assert archive.current("foo.com", 49) is not None

    def test_reregistration_opens_new_epoch(self, archive):
        archive.record_deletion("foo.com", day=50)
        archive.record_registration("foo.com", "enom", day=80)
        assert archive.registrar_at("foo.com", 85) == "enom"
        assert archive.registrar_at("foo.com", 40) == "godaddy"
        assert len(archive.history("foo.com")) == 2

    def test_renewal_of_unregistered_is_noop(self, archive):
        archive.record_deletion("foo.com", day=50)
        archive.record_renewal("foo.com", day=60)
        assert archive.current("foo.com", 60) is None

    def test_deletion_of_unknown_is_noop(self):
        WhoisArchive().record_deletion("ghost.com", day=5)


class TestQueries:
    def test_registrar_at_unregistered(self, archive):
        assert archive.registrar_at("ghost.com", 10) is None

    def test_ever_registered(self, archive):
        assert archive.ever_registered("foo.com")
        assert not archive.ever_registered("ghost.com")

    def test_first_registration_after(self, archive):
        archive.record_deletion("foo.com", day=50)
        archive.record_registration("foo.com", "hijacker-reg", day=90)
        found = archive.first_registration_after("foo.com", 60)
        assert found is not None and found.created == 90

    def test_first_registration_after_none(self, archive):
        assert archive.first_registration_after("foo.com", 1) is None

    def test_first_registration_boundary_inclusive(self, archive):
        found = archive.first_registration_after("foo.com", 0)
        assert found is not None and found.created == 0

    def test_len_counts_epochs(self, archive):
        archive.record_deletion("foo.com", day=50)
        archive.record_registration("foo.com", "enom", day=80)
        assert len(archive) == 2

    def test_domains_iterates(self, archive):
        assert list(archive.domains()) == ["foo.com"]

    def test_names_normalized(self, archive):
        assert archive.registrar_at("FOO.COM", 10) == "godaddy"


class TestRedaction:
    def test_redaction_applies(self):
        whois = WhoisArchive(redact_registrants=True)
        whois.record_registration("a.com", "enom", day=0, registrant="Bob")
        assert whois.current("a.com", 0).registrant == REDACTED

    def test_registrar_survives_redaction(self):
        """GDPR hides registrants, not sponsoring registrars (§6.2)."""
        whois = WhoisArchive(redact_registrants=True)
        whois.record_registration("a.com", "enom", day=0, registrant="Bob")
        assert whois.registrar_at("a.com", 0) == "enom"

    def test_empty_registrant_not_redacted(self):
        whois = WhoisArchive(redact_registrants=True)
        whois.record_registration("a.com", "enom", day=0)
        assert whois.current("a.com", 0).registrant == ""
