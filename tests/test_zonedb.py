"""Tests for the longitudinal zone database.

Every test here runs against both delegation-store backends (in-memory
and SQLite): the façade must behave identically no matter where the
intervals live.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simtime import Interval
from repro.store.sqlite import SqliteDelegationStore
from repro.zonedb.database import ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot

BACKENDS = ("memory", "sqlite")


def _store_for(backend):
    return SqliteDelegationStore(":memory:") if backend == "sqlite" else None


@pytest.fixture(params=BACKENDS)
def make_db(request):
    def factory(covered_tlds=()):
        return ZoneDatabase(covered_tlds, store=_store_for(request.param))

    return factory


@pytest.fixture()
def db(make_db):
    database = make_db(["com", "biz"])
    database.set_delegation(0, "foo.com", ["ns1.x.net", "ns2.x.net"])
    database.set_glue(0, "ns1.foo.com")
    return database


class TestDelegationHistory:
    def test_first_seen(self, db):
        assert db.first_seen("ns1.x.net") == 0

    def test_unknown_ns(self, db):
        assert db.first_seen("ghost.net") is None

    def test_domains_of_ns(self, db):
        assert db.domains_of_ns("ns1.x.net") == {"foo.com"}

    def test_domains_of_ns_at_day(self, db):
        db.remove_delegation(10, "foo.com")
        assert db.domains_of_ns("ns1.x.net", 5) == {"foo.com"}
        assert db.domains_of_ns("ns1.x.net", 10) == frozenset()

    def test_nameservers_of(self, db):
        assert db.nameservers_of("foo.com", 3) == {"ns1.x.net", "ns2.x.net"}

    def test_set_delegation_diffs(self, db):
        db.set_delegation(5, "foo.com", ["ns1.x.net", "ns3.y.net"])
        assert db.nameservers_of("foo.com", 6) == {"ns1.x.net", "ns3.y.net"}
        # The replaced pair closed at day 5.
        records = {r.ns: r for r in db.domain_records("foo.com")}
        assert records["ns2.x.net"].end == 5
        assert records["ns1.x.net"].end is None

    def test_nameservers_removed_on(self, db):
        db.set_delegation(5, "foo.com", ["ns9.z.net"])
        assert db.nameservers_removed_on("foo.com", 5) == {
            "ns1.x.net", "ns2.x.net"
        }
        assert db.nameservers_removed_on("foo.com", 4) == frozenset()

    def test_same_day_add_remove_invisible(self, db):
        """Zero-length intervals don't exist at daily granularity."""
        db.set_delegation(7, "flash.com", ["ns1.flash.net"])
        db.remove_delegation(7, "flash.com")
        assert db.first_seen("ns1.flash.net") is None
        assert not db.domain_ever_seen("flash.com")

    def test_empty_ns_set_removes(self, db):
        db.set_delegation(5, "foo.com", [])
        assert db.nameservers_of("foo.com", 6) == frozenset()

    def test_redundant_set_is_noop(self, db):
        db.set_delegation(5, "foo.com", ["ns2.x.net", "ns1.x.net"])
        records = db.domain_records("foo.com")
        assert len(records) == 2  # no new intervals opened

    def test_horizon_monotonic(self, db):
        db.advance(100)
        with pytest.raises(ValueError):
            db.advance(50)

    def test_ns_tlds(self, db):
        db.set_delegation(3, "bar.biz", ["ns1.x.net"])
        assert db.ns_tlds("ns1.x.net") == {"com", "biz"}


class TestPresence:
    def test_domain_present(self, db):
        assert db.domain_present("foo.com", 0)
        db.remove_delegation(10, "foo.com")
        assert not db.domain_present("foo.com", 10)
        assert db.domain_present("foo.com", 9)

    def test_presence_intervals_reopen(self, db):
        db.remove_delegation(10, "foo.com")
        db.set_delegation(20, "foo.com", ["ns1.x.net"])
        intervals = db.domain_presence_intervals("foo.com")
        assert intervals == [Interval(0, 10), Interval(20, None)]

    def test_glue_present(self, db):
        assert db.glue_present("ns1.foo.com", 0)
        db.remove_glue(4, "ns1.foo.com")
        assert not db.glue_present("ns1.foo.com", 4)

    def test_glue_intervals(self, db):
        db.remove_glue(4, "ns1.foo.com")
        db.set_glue(9, "ns1.foo.com")
        assert db.glue_intervals("ns1.foo.com") == [Interval(0, 4), Interval(9, None)]

    def test_coverage(self, db):
        assert db.covers("anything.com")
        assert not db.covers("anything.org")


class TestSnapshots:
    def test_snapshot_at_reconstructs(self, db):
        db.set_delegation(5, "bar.com", ["ns3.y.net"])
        db.remove_delegation(8, "foo.com")
        snap = db.snapshot_at(6, "com")
        assert snap.delegations == {
            "foo.com": frozenset({"ns1.x.net", "ns2.x.net"}),
            "bar.com": frozenset({"ns3.y.net"}),
        }
        later = db.snapshot_at(9, "com")
        assert set(later.delegations) == {"bar.com"}

    def test_ingest_snapshot_equivalent_to_changes(self, make_db):
        """Snapshot-diff ingestion and the change API agree exactly."""
        by_changes = make_db(["com"])
        by_snapshots = make_db(["com"])
        timeline = {
            0: {"a.com": {"ns1.x.net"}, "b.com": {"ns2.x.net"}},
            1: {"a.com": {"ns1.x.net"}, "b.com": {"ns3.x.net"}},
            2: {"b.com": {"ns3.x.net"}},
            3: {"b.com": {"ns3.x.net"}, "c.com": {"ns1.x.net"}},
        }
        current: dict[str, set[str]] = {}
        for day, state in timeline.items():
            for domain in sorted(set(current) - set(state)):
                by_changes.remove_delegation(day, domain)
            for domain, ns in state.items():
                if current.get(domain) != ns:
                    by_changes.set_delegation(day, domain, ns)
            current = {d: set(ns) for d, ns in state.items()}
            by_snapshots.ingest_snapshot(
                ZoneSnapshot(
                    day=day, tld="com",
                    delegations={d: frozenset(ns) for d, ns in state.items()},
                )
            )
        for day in timeline:
            for domain in ("a.com", "b.com", "c.com"):
                assert by_changes.nameservers_of(domain, day) == \
                    by_snapshots.nameservers_of(domain, day)
        assert by_changes.first_seen("ns3.x.net") == by_snapshots.first_seen("ns3.x.net")

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["a.com", "b.com", "c.com", "d.com"]),
                st.sets(
                    st.sampled_from(["ns1.x.net", "ns2.x.net", "ns3.y.org"]),
                    min_size=1, max_size=2,
                ),
                max_size=4,
            ),
            min_size=1, max_size=8,
        )
    )
    def test_snapshot_roundtrip_property(self, states):
        """Any daily state sequence survives ingest + reconstruction."""
        # Backends are exercised inside the test body (not via fixture
        # params) so hypothesis reuses examples across both.
        for backend in BACKENDS:
            db = ZoneDatabase(["com"], store=_store_for(backend))
            for day, state in enumerate(states):
                db.ingest_snapshot(
                    ZoneSnapshot(
                        day=day, tld="com",
                        delegations={d: frozenset(ns) for d, ns in state.items()},
                    )
                )
            db.advance(len(states))
            for day, state in enumerate(states):
                reconstructed = db.snapshot_at(day, "com").delegations
                assert reconstructed == {
                    d: frozenset(ns) for d, ns in state.items()
                }


class TestCounts:
    def test_counts(self, db):
        assert db.domain_count() == 1
        assert db.nameserver_count() == 2
        assert set(db.all_domains()) == {"foo.com"}
        assert set(db.all_nameservers()) == {"ns1.x.net", "ns2.x.net"}

    def test_repr(self, db):
        assert "ZoneDatabase" in repr(db)
