"""Tests for the AS112 anycast model and the §7.3 residual-risk experiment."""

import pytest

from repro.dnscore.records import RRType
from repro.resolver.anycast import AnycastBehavior, AnycastNode
from repro.resolver.server import AnsweringBehavior, SilentBehavior


class TestAnycastRouting:
    @pytest.fixture()
    def behavior(self):
        anycast = AnycastBehavior()
        rogue = AnsweringBehavior()
        rogue.add_record("victim.com", RRType.A, "198.18.66.66")
        anycast.add_node(
            AnycastNode("rogue", ("198.18.0.0/15",), rogue, honest=False)
        )
        anycast.add_node(
            AnycastNode("honest", ("0.0.0.0/0",), SilentBehavior(), honest=True)
        )
        return anycast

    def test_catchment_routing(self, behavior):
        assert behavior.node_for("198.18.0.1").name == "rogue"
        assert behavior.node_for("9.9.9.9").name == "honest"

    def test_rogue_answers_in_catchment(self, behavior):
        answer = behavior.handle(0, "victim.com", RRType.A, "198.18.0.1")
        assert answer == ["198.18.66.66"]

    def test_honest_node_silent_outside(self, behavior):
        assert behavior.handle(0, "victim.com", RRType.A, "9.9.9.9") is None

    def test_dnssec_rejects_rogue_answers(self, behavior):
        behavior.signed_zone = True
        assert behavior.handle(0, "victim.com", RRType.A, "198.18.0.1") is None

    def test_dnssec_does_not_affect_honest_nodes(self):
        anycast = AnycastBehavior(signed_zone=True)
        honest = AnsweringBehavior()
        honest.add_record("x.com", RRType.A, "192.0.2.1")
        anycast.add_node(AnycastNode("h", ("0.0.0.0/0",), honest, honest=True))
        assert anycast.handle(0, "x.com", RRType.A, "1.2.3.4") == ["192.0.2.1"]

    def test_no_covering_node(self):
        anycast = AnycastBehavior()
        anycast.add_node(
            AnycastNode("narrow", ("10.0.0.0/8",), SilentBehavior())
        )
        assert anycast.node_for("9.9.9.9") is None
        assert anycast.handle(0, "x.com", RRType.A, "9.9.9.9") is None


class TestAs112Experiment:
    @pytest.fixture(scope="class")
    def report(self, default_bundle):
        from repro.experiment.as112 import run_as112_experiment
        return run_as112_experiment(default_bundle.world, default_bundle.study)

    def test_protected_domains_exist(self, report):
        """GoDaddy's remediation left domains on empty.as112.arpa names."""
        assert report.protected_domains

    def test_regional_hijack_without_dnssec(self, report):
        assert report.regional_hijack_works
        assert len(report.hijacked_in_catchment) == len(report.protected_domains)

    def test_outside_catchment_unaffected(self, report):
        assert report.unaffected_outside == []

    def test_dnssec_mitigation(self, report):
        assert report.dnssec_mitigates
