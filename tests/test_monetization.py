"""Tests for the §6.2 monetization probe."""

import pytest

from repro.api import reproduce
from repro.dnscore.records import RRType
from repro.experiment.monetization import (
    MonetizationProbe,
    REDIRECT_OPERATORS,
    run_monetization_probe,
)
from repro.resolver.server import ParkingBehavior, RedirectBehavior


class TestBehaviors:
    def test_parking_answers_anything(self):
        behavior = ParkingBehavior(parking_address="203.0.113.99")
        assert behavior.handle(0, "whatever.com", RRType.A, "1.1.1.1") == [
            "203.0.113.99"
        ]
        assert behavior.handle(0, "another.org", RRType.A, "1.1.1.1") == [
            "203.0.113.99"
        ]

    def test_parking_only_answers_a(self):
        behavior = ParkingBehavior()
        assert behavior.handle(0, "x.com", RRType.TXT, "1.1.1.1") is None

    def test_redirect_answers_with_destination(self):
        behavior = RedirectBehavior(destination_address="203.0.113.80")
        assert behavior.handle(0, "victim.com", RRType.A, "1.1.1.1") == [
            "203.0.113.80"
        ]


@pytest.fixture(scope="module")
def probe_bundle():
    return reproduce(seed=321, scale=0.25, use_cache=False)


@pytest.fixture(scope="module")
def report(probe_bundle):
    return run_monetization_probe(
        probe_bundle.world, probe_bundle.study, sample=80, seed=4
    )


class TestProbe:
    def test_sample_probed(self, report):
        assert report.sampled > 0
        assert sum(report.classes.values()) == report.sampled

    def test_parking_dominates(self, report):
        """§6.2: 'parking sites dominating the sample'."""
        assert report.parking_fraction > 0.5

    def test_redirect_operator_detected(self, report):
        if "phonesear.ch" in report.by_operator:
            assert report.by_operator["phonesear.ch"].get("redirect", 0) > 0
            assert report.by_operator["phonesear.ch"].get("parking", 0) == 0

    def test_parking_operators_never_redirect(self, report):
        for operator, classes in report.by_operator.items():
            if operator not in REDIRECT_OPERATORS:
                assert classes.get("redirect", 0) == 0

    def test_retrospective_stability(self, report):
        """§6.2: usage 'has not changed significantly over time'."""
        assert report.retrospective
        assert report.retrospective_stable()

    def test_unhijacked_domains_stay_unreachable(self, probe_bundle):
        probe = MonetizationProbe(probe_bundle.world, probe_bundle.study)
        day = probe_bundle.study.config.study_end - 1
        for group in probe_bundle.study.groups.values():
            if not group.hijackable or group.hijacked:
                continue
            victims = set()
            for view in group.nameservers:
                victims |= view.domains_on(day)
            for domain in sorted(victims)[:1]:
                all_ns = probe_bundle.world.zonedb.nameservers_of(domain, day)
                if len(all_ns) > 1:
                    continue  # partial domains resolve via their good NS
                verdict, _op = probe.classify(domain, day)
                assert verdict == "unreachable"
                return
