"""Tracer: deterministic span IDs, torn-tail recovery, canonical view."""

from __future__ import annotations

import json

import pytest

from repro.obs import runtime as obs
from repro.obs.schema import validate_trace_file, validate_trace_records
from repro.obs.tracer import (
    TRACE_FORMAT,
    TraceCorruption,
    Tracer,
    canonical_spans,
    read_trace,
    span_id_for,
    trace_content_digest,
)

RUN = "run-feedbeef0123"


class TestSpanIds:
    def test_derived_not_drawn(self):
        first = span_id_for(RUN, "run/shard-0/candidates")
        again = span_id_for(RUN, "run/shard-0/candidates")
        assert first == again
        assert len(first) == 16
        assert int(first, 16) >= 0  # hex digest prefix

    def test_distinct_per_path_and_run(self):
        assert span_id_for(RUN, "run/shard-0") != span_id_for(RUN, "run/shard-1")
        assert span_id_for(RUN, "run") != span_id_for("run-other", "run")


class TestEmission:
    def test_trace_start_and_nested_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.open_or_create(path, RUN)
        with tracer.span("run", shards=2) as run_span:
            with tracer.span("shard-0", shard=0) as shard_span:
                shard_span.set(stages=["candidates"])
            run_span.set(result_digest="abc")
        tracer.close()

        records = read_trace(path)
        assert records[0].type == "trace-start"
        assert records[0].payload["format"] == TRACE_FORMAT
        types = [record.type for record in records]
        assert types == [
            "trace-start", "span-start", "span-start", "span-end", "span-end",
        ]
        shard_end = records[3]
        assert shard_end.payload["path"] == "run/shard-0"
        assert shard_end.payload["span_id"] == span_id_for(RUN, "run/shard-0")
        assert shard_end.payload["stages"] == ["candidates"]
        assert "duration_ms" in shard_end.telemetry
        run_end = records[4]
        assert run_end.payload["result_digest"] == "abc"
        assert validate_trace_records(records) == []

    def test_event_carries_parent_span(self, tmp_path):
        tracer = Tracer.open_or_create(tmp_path / "trace.jsonl", RUN)
        with tracer.span("run"):
            tracer.event("supervisor.retry", shard=1, attempt=2)
        tracer.close()
        records = read_trace(tmp_path / "trace.jsonl")
        event = next(r for r in records if r.type == "event")
        assert event.payload["name"] == "supervisor.retry"
        assert event.payload["parent_id"] == span_id_for(RUN, "run")

    def test_exception_leaves_span_unended(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.open_or_create(path, RUN)
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                raise RuntimeError("simulated death")
        tracer.close()
        records = read_trace(path)
        assert [r.type for r in records] == ["trace-start", "span-start"]
        assert canonical_spans(records) == []


class TestContentTelemetrySplit:
    def test_checksum_ignores_telemetry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.open_or_create(path, RUN)
        with tracer.span("run"):
            pass
        tracer.close()
        before = read_trace(path)

        # Rewrite every duration on disk: records must still verify and
        # the content digest must not move — durations are telemetry.
        lines = path.read_text(encoding="utf-8").splitlines()
        edited = []
        for line in lines:
            document = json.loads(line)
            if "telemetry" in document:
                document["telemetry"] = {"duration_ms": 99999.9}
            edited.append(json.dumps(document, sort_keys=True))
        path.write_text("\n".join(edited) + "\n", encoding="utf-8")

        after = read_trace(path)
        assert len(after) == len(before)
        assert trace_content_digest(after) == trace_content_digest(before)

    def test_tampered_content_is_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.open_or_create(path, RUN)
        with tracer.span("run"):
            pass
        tracer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        document = json.loads(lines[1])
        document["payload"]["name"] = "forged"
        lines[1] = json.dumps(document, sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(TraceCorruption):
            read_trace(path)


class TestRecovery:
    def _write_some(self, path):
        tracer = Tracer.open_or_create(path, RUN)
        with tracer.span("run"):
            pass
        tracer.close()

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_some(path)
        whole = read_trace(path)
        with open(path, "ab") as handle:
            handle.write(b'{"checksum": "dead", "seq": 3, "trunc')
        assert read_trace(path) == whole

    def test_reopen_truncates_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_some(path)
        with open(path, "ab") as handle:
            handle.write(b'{"half a record')
        tracer = Tracer.open_or_create(path, RUN)
        tracer.event("after.recovery")
        tracer.close()
        records = read_trace(path)
        assert records[-1].payload["name"] == "after.recovery"
        # Sequence numbers stay dense through the recovery.
        assert [r.seq for r in records] == list(range(len(records)))
        assert validate_trace_file(path) == []

    def test_mid_file_damage_quarantined_on_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_some(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        tracer = Tracer.open_or_create(path, RUN)
        tracer.close()
        assert (tmp_path / "trace.jsonl.corrupt-0").exists()
        fresh = read_trace(path)
        assert [r.type for r in fresh] == ["trace-start"]

    def test_foreign_run_quarantined(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_some(path)
        tracer = Tracer.open_or_create(path, "run-someoneelse")
        tracer.close()
        assert (tmp_path / "trace.jsonl.corrupt-0").exists()
        assert read_trace(path)[0].run_id == "run-someoneelse"


class TestCanonicalView:
    def test_redone_work_dedupes_to_one_span(self, tmp_path):
        """A kill-and-redo trace converges on the uninterrupted digest."""
        clean_path = tmp_path / "clean.jsonl"
        tracer = Tracer.open_or_create(clean_path, RUN)
        with tracer.span("run"):
            with tracer.span("shard-0") as span:
                span.set(stages=["candidates"])
        tracer.close()
        clean = read_trace(clean_path)

        # Interrupted session: shard-0 starts but never ends...
        chaos_path = tmp_path / "chaos.jsonl"
        tracer = Tracer.open_or_create(chaos_path, RUN)
        try:
            with tracer.span("run"):
                with tracer.span("shard-0"):
                    raise KeyboardInterrupt  # BaseException, like ChaosKill
        except KeyboardInterrupt:
            pass
        tracer.close()
        # ...and the resumed session redoes it with identical content.
        tracer = Tracer.open_or_create(chaos_path, RUN)
        with tracer.span("run"):
            with tracer.span("shard-0") as span:
                span.set(stages=["candidates"])
        tracer.close()
        chaos = read_trace(chaos_path)

        assert len(chaos) > len(clean)  # more raw records...
        spans = canonical_spans(chaos)
        assert [s["path"] for s in spans] == ["run", "run/shard-0"]
        assert trace_content_digest(chaos) == trace_content_digest(clean)

    def test_last_span_end_wins(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.open_or_create(path, RUN)
        for stages in (["old"], ["new"]):
            with tracer.span("run") as span:
                span.set(stages=stages)
        tracer.close()
        spans = canonical_spans(read_trace(path))
        assert len(spans) == 1
        assert spans[0]["stages"] == ["new"]


class TestRuntimeIntegration:
    def test_observing_installs_and_restores(self, tmp_path):
        tracer = Tracer.open_or_create(tmp_path / "trace.jsonl", RUN)
        assert obs.active_tracer() is None
        with obs.observing(tracer):
            assert obs.active_tracer() is tracer
            with obs.span("run") as span:
                assert span.span_id == span_id_for(RUN, "run")
            obs.trace_event("ping")
        assert obs.active_tracer() is None
        tracer.close()
        types = [r.type for r in read_trace(tmp_path / "trace.jsonl")]
        assert types == ["trace-start", "span-start", "span-end", "event"]
