"""Tests for the text report renderers."""

import pytest

from repro.analysis import report


@pytest.fixture(scope="module")
def rendered(tiny_bundle):
    return report.render_full_report(tiny_bundle.pipeline, tiny_bundle.study)


class TestPrimitives:
    def test_format_table_alignment(self):
        text = report.format_table(
            ["name", "count"], [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "count" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_monthly_series_buckets(self):
        series = {f"2011-{m:02d}": m for m in range(1, 13)}
        text = report.format_monthly_series(series, every=6)
        assert text.count("\n") == 1  # two buckets

    def test_format_monthly_series_bars_scale(self):
        series = {"a": 10, "b": 0}
        text = report.format_monthly_series(series, width=10, every=1)
        first, second = text.splitlines()
        assert first.count("#") == 10
        assert second.count("#") == 0

    def test_format_cdf_includes_points(self):
        text = report.format_cdf([1, 5, 30], points=(1, 30), title="x")
        assert "<=     1 days" in text
        assert "<=    30 days" in text
        assert "n=3" in text


class TestSectionRenderers:
    def test_all_sections_present(self, rendered):
        for marker in (
            "Detection pipeline funnel",
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
            "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
        ):
            assert marker in rendered, marker

    def test_table2_contains_known_idioms(self, rendered):
        assert "PLEASEDROPTHISHOST" in rendered
        assert "GoDaddy" in rendered

    def test_table5_contains_baseline(self, rendered):
        assert "Organic baseline" in rendered

    def test_figure3_has_trend_line(self, rendered):
        assert "trend slope" in rendered

    def test_figure4_has_burstiness(self, rendered):
        assert "burstiness" in rendered

    def test_renders_are_plain_printable_text(self, rendered):
        assert isinstance(rendered, str)
        assert all(ch == "\n" or ch.isprintable() for ch in rendered)


class TestExtraSections:
    def test_dataset_section_present(self, rendered):
        assert "Data set overview" in rendered

    def test_nature_section_present(self, rendered):
        assert "Nature of currently-hijackable domains" in rendered

    def test_table5_attribution_line(self, rendered):
        assert "attribution of the" in rendered
