"""Sharded detection must be bit-identical to the unsharded pipeline.

The §3 funnel is re-run per nameserver shard and merged; that merge has
to reproduce the single-pass result *exactly* — same funnel counts,
same sacrificial set, same matches — over either delegation-store
backend. These tests pin that equivalence at test scale (the
full-scale seeds 2021/7 equivalence is the PR's acceptance run; the
merge logic exercised here is scale-independent).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.detection.pipeline import DetectionPipeline, PipelineResult
from repro.store.dataset import ShardSpec, open_dataset, write_dataset
from repro.store.artifacts import scenario_digest


def fingerprint(result: PipelineResult) -> dict:
    """Everything observable about a pipeline run, order included."""
    return {
        "funnel": dataclasses.asdict(result.funnel),
        "sacrificial": [dataclasses.asdict(s) for s in result.sacrificial],
        "matches": [
            (m.candidate, m.original_ns, m.original_domain, m.first_seen)
            for m in result.matches
        ],
        "candidates": [
            (c.name, c.first_seen, sorted(c.referencing_domains))
            for c in result.candidates
        ],
        "mined": [(p.substring, p.support) for p in result.mined_patterns],
    }


class TestShardSpec:
    def test_partition_covers_every_nameserver_once(self):
        shards = ShardSpec.partition(4)
        names = [f"ns{i}.host{i % 7}.example" for i in range(50)]
        for name in names:
            owners = [s for s in shards if s.owns(name)]
            assert len(owners) == 1

    def test_assignment_is_stable(self):
        assert [ShardSpec(i, 3).owns("ns1.a.biz") for i in range(3)] == [
            ShardSpec(i, 3).owns("ns1.a.biz") for i in range(3)
        ]

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec(3, 3)
        with pytest.raises(ValueError):
            ShardSpec(-1, 2)
        with pytest.raises(ValueError):
            ShardSpec.partition(0)


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_unsharded_memory(self, tiny_bundle, shards):
        world = tiny_bundle.world
        sharded = DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=False, shards=shards
        ).run()
        assert fingerprint(sharded) == fingerprint(tiny_bundle.pipeline)

    def test_sharded_with_mining_matches_unsharded(self, tiny_bundle):
        world = tiny_bundle.world
        unsharded = DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=True
        ).run()
        sharded = DetectionPipeline(
            world.zonedb, world.whois, mine_patterns=True, shards=3
        ).run()
        assert fingerprint(sharded) == fingerprint(unsharded)

    def test_sharded_over_sqlite_dataset_matches(self, tiny_bundle, tmp_path):
        """simulate → write dataset → reopen → sharded detect: identical."""
        world = tiny_bundle.world
        path = tmp_path / "dataset.sqlite"
        write_dataset(
            world.zonedb, path,
            scenario_digest=scenario_digest(world.config),
        )
        reopened = open_dataset(path)
        sharded = DetectionPipeline(
            reopened, world.whois, mine_patterns=False, shards=4
        ).run()
        assert fingerprint(sharded) == fingerprint(tiny_bundle.pipeline)

    def test_invalid_shard_count_rejected(self, tiny_bundle):
        world = tiny_bundle.world
        with pytest.raises(ValueError):
            DetectionPipeline(world.zonedb, world.whois, shards=0)


class TestShardCheckpoints:
    def test_resume_skips_completed_shards(self, tiny_bundle, tmp_path):
        world = tiny_bundle.world
        checkpoint_dir = tmp_path / "ckpt"

        first = DetectionPipeline(world.zonedb, world.whois, shards=3)
        baseline = first.run(checkpoint_path=checkpoint_dir)
        saved = sorted(p.name for p in checkpoint_dir.iterdir())
        assert saved == [
            f"shard-{i:04d}-of-0003.pkl" for i in range(3)
        ]

        # A resumed pipeline whose stages all explode must still produce
        # the identical result purely from the shard checkpoints.
        resumed = DetectionPipeline(world.zonedb, world.whois, shards=3)

        def boom(view, state):
            raise AssertionError("stage ran despite checkpoint")

        for stage in (
            "_stage_candidates", "_stage_test_filter", "_stage_pattern_sweep",
            "_stage_single_repo", "_stage_match",
        ):
            setattr(resumed, stage, boom)
        result = resumed.run(checkpoint_path=checkpoint_dir)
        assert fingerprint(result) == fingerprint(baseline)

    def test_partial_checkpoints_recompute_missing_shards(
        self, tiny_bundle, tmp_path
    ):
        world = tiny_bundle.world
        checkpoint_dir = tmp_path / "ckpt"
        baseline = DetectionPipeline(world.zonedb, world.whois, shards=3).run(
            checkpoint_path=checkpoint_dir
        )
        (checkpoint_dir / "shard-0001-of-0003.pkl").unlink()
        rerun = DetectionPipeline(world.zonedb, world.whois, shards=3).run(
            checkpoint_path=checkpoint_dir
        )
        assert fingerprint(rerun) == fingerprint(baseline)
        assert (checkpoint_dir / "shard-0001-of-0003.pkl").exists()
