"""The incremental detection engine: batch-identical daily updates.

The contract under test: after advancing through batch day N, the
engine's :meth:`~repro.detection.incremental.IncrementalDetectionEngine.result`
is bit-identical (same result digest) to a fresh batch pipeline run over
a zone database rebuilt through day N — on both engine store backends,
across serialize/restore, and through the journaled incremental runner
with its crash-recovery paths.
"""

from __future__ import annotations

import pytest

from repro.detection.incremental import (
    ENGINE_WATERMARK,
    IncrementalDetectionEngine,
    commit_watermark,
    dump_engine_state,
    load_engine_state,
    new_engine_state,
)
from repro.detection.pipeline import DetectionPipeline
from repro.runner.execution import (
    result_digest,
    run_incremental_detection,
)
from repro.runner.journal import RunJournal
from repro.runner.supervisor import RunFailed
from repro.store.dataset import DeltaView
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase

SCALE = 0.05
SEED = 2021


@pytest.fixture(scope="module")
def world():
    from repro.ecosystem.config import default_scenario
    from repro.ecosystem.world import World

    return World(default_scenario(SEED).scaled(SCALE)).run()


@pytest.fixture(scope="module")
def batch_digest(world):
    result = DetectionPipeline(world.zonedb, world.whois).run()
    return result_digest(result)


def _drained_engine(world, **kwargs) -> IncrementalDetectionEngine:
    engine = IncrementalDetectionEngine(world.whois, **kwargs)
    engine.advance_from(world.zonedb)
    return engine


def _mini_inputs() -> tuple[ZoneDatabase, WhoisArchive]:
    """A tiny hand-built history: a few days, every delta kind."""
    zonedb = ZoneDatabase()
    zonedb.cover("biz")
    zonedb.set_delegation(1, "alpha.biz", ["ns1.alpha.biz"])
    zonedb.set_glue(1, "ns1.alpha.biz")
    zonedb.set_delegation(2, "beta.biz", ["ns1.alpha.biz"])
    zonedb.set_delegation(3, "alpha.biz", ["dropme99.gamma.biz"])
    zonedb.remove_glue(3, "ns1.alpha.biz")
    zonedb.set_delegation(5, "beta.biz", ["ns2.delta.biz"])
    zonedb.remove_delegation(6, "alpha.biz")
    return zonedb, WhoisArchive()


class TestEngineEquivalence:
    def test_memory_backend_matches_batch(self, world, batch_digest):
        engine = _drained_engine(world)
        assert result_digest(engine.result()) == batch_digest

    def test_sqlite_backend_matches_batch(self, world, batch_digest, tmp_path):
        engine = _drained_engine(
            world, backend="sqlite", store_path=tmp_path / "engine.sqlite"
        )
        assert result_digest(engine.result()) == batch_digest

    def test_partial_then_continued_advance_matches_batch(
        self, world, batch_digest
    ):
        view = DeltaView(world.zonedb)
        midpoint = view.batches()[len(view.batches()) // 2][0]
        engine = IncrementalDetectionEngine(world.whois)
        days_first = engine.advance_from(world.zonedb, until=midpoint)
        assert engine.watermark == midpoint
        days_rest = engine.advance_from(world.zonedb)
        assert days_first > 0 and days_rest > 0
        assert result_digest(engine.result()) == batch_digest

    def test_every_prefix_matches_batch_on_mini_history(self):
        zonedb, whois = _mini_inputs()
        engine = IncrementalDetectionEngine(whois)
        for batch_day, events in DeltaView(zonedb).batches():
            engine.advance(batch_day, events)
            replica = ZoneDatabase()
            for day, event in zonedb.deltas_since(None):
                if day <= batch_day:
                    replica.apply_delta(event)
            batch = DetectionPipeline(replica, whois).run()
            assert result_digest(engine.result()) == result_digest(batch), (
                f"prefix through day {batch_day} diverged"
            )


class TestWatermarkGuards:
    def test_advance_rejects_non_increasing_batch_day(self):
        zonedb, whois = _mini_inputs()
        engine = IncrementalDetectionEngine(whois)
        batches = DeltaView(zonedb).batches()
        engine.advance(*batches[1])
        with pytest.raises(ValueError, match="already advanced"):
            engine.advance(*batches[1])
        with pytest.raises(ValueError, match="already advanced"):
            engine.advance(*batches[0])

    def test_commit_watermark_never_moves_backwards(self):
        state = new_engine_state()
        commit_watermark(state, ENGINE_WATERMARK, 5)
        commit_watermark(state, ENGINE_WATERMARK, 5)
        with pytest.raises(ValueError, match="cannot move backwards"):
            commit_watermark(state, ENGINE_WATERMARK, 4)

    def test_advance_from_commits_source_consumer_watermark(self):
        zonedb, whois = _mini_inputs()
        engine = IncrementalDetectionEngine(whois)
        engine.advance_from(zonedb, consumer="incremental-engine")
        assert zonedb.watermark("incremental-engine") == engine.watermark


class TestSerialization:
    def test_dump_restore_round_trip_matches(self, world, batch_digest):
        data = dump_engine_state(_drained_engine(world))
        fresh = IncrementalDetectionEngine(world.whois)
        watermark = fresh.restore(world.zonedb, data)
        assert watermark == DeltaView(world.zonedb).last_batch_day()
        assert fresh.watermark == watermark
        assert result_digest(fresh.result()) == batch_digest

    def test_dump_is_deterministic(self):
        zonedb, whois = _mini_inputs()
        first = IncrementalDetectionEngine(whois)
        first.advance_from(zonedb)
        second = IncrementalDetectionEngine(whois)
        second.advance_from(zonedb)
        assert dump_engine_state(first) == dump_engine_state(second)

    def test_restore_requires_fresh_engine(self):
        zonedb, whois = _mini_inputs()
        engine = IncrementalDetectionEngine(whois)
        engine.advance_from(zonedb)
        with pytest.raises(ValueError, match="fresh engine"):
            engine.restore(zonedb, dump_engine_state(engine))

    def test_load_rejects_foreign_payloads(self):
        import pickle

        with pytest.raises(ValueError, match="not an engine state"):
            load_engine_state(pickle.dumps({"format": "something-else/1"}))

    def test_restored_engine_continues_advancing(self):
        zonedb, whois = _mini_inputs()
        batches = DeltaView(zonedb).batches()
        partial = IncrementalDetectionEngine(whois)
        for batch_day, events in batches[:-2]:
            partial.advance(batch_day, events)
        fresh = IncrementalDetectionEngine(whois)
        fresh.restore(zonedb, dump_engine_state(partial))
        fresh.advance_from(zonedb)
        batch = DetectionPipeline(zonedb, whois).run()
        assert result_digest(fresh.result()) == result_digest(batch)


class TestIncrementalRunner:
    def test_fresh_run_matches_batch(self, world, batch_digest, tmp_path):
        outcome = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run"
        )
        assert outcome.result_digest == batch_digest
        assert outcome.days_advanced > 0
        assert not outcome.resumed
        assert outcome.watermark == DeltaView(world.zonedb).last_batch_day()

    def test_sqlite_engine_backend_matches_batch(
        self, world, batch_digest, tmp_path
    ):
        outcome = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run",
            backend="sqlite",
        )
        assert outcome.result_digest == batch_digest

    def test_resume_folds_exactly_the_new_days(self, world, batch_digest, tmp_path):
        view = DeltaView(world.zonedb)
        total = len(view.batches())
        midpoint = view.batches()[total // 2][0]
        first = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run", until=midpoint
        )
        assert first.watermark == midpoint
        second = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run",
            resume=first.run_id,
        )
        assert second.resumed
        assert second.restored_watermark == midpoint
        assert second.days_advanced == total - (total // 2 + 1)
        assert second.result_digest == batch_digest

    def test_current_run_replays_recorded_result(self, world, tmp_path):
        first = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run"
        )
        replay = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run",
            resume=first.run_id,
        )
        assert replay.resumed
        assert replay.days_advanced == 0
        assert replay.result_digest == first.result_digest

    def test_existing_journal_requires_resume(self, world, tmp_path):
        run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run"
        )
        with pytest.raises(RunFailed, match="already holds a journal"):
            run_incremental_detection(
                world.zonedb, world.whois, run_dir=tmp_path / "run"
            )

    def test_resume_detects_changed_inputs(self, world, tmp_path):
        first = run_incremental_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "run"
        )
        with pytest.raises(RunFailed, match="run inputs changed"):
            run_incremental_detection(
                world.zonedb, world.whois, run_dir=tmp_path / "run",
                mine_patterns=False, resume=first.run_id,
            )

    def _journaled_resets(self, run_dir):
        journal = RunJournal.open(run_dir / "journal.jsonl")
        return [r.payload["reason"] for r in journal.events("engine-reset")]

    def test_corrupt_checkpoint_resets_and_refolds(self, world, tmp_path):
        run_dir = tmp_path / "run"
        first = run_incremental_detection(
            world.zonedb, world.whois, run_dir=run_dir
        )
        checkpoint = run_dir / "checkpoints" / "engine-state.pkl"
        checkpoint.write_bytes(b"garbage")
        again = run_incremental_detection(
            world.zonedb, world.whois, run_dir=run_dir, resume=first.run_id
        )
        assert again.restored_watermark is None
        assert again.days_advanced > 0  # full deterministic refold
        assert again.result_digest == first.result_digest
        assert self._journaled_resets(run_dir) == ["checkpoint-unreadable"]

    def test_missing_checkpoint_resets_and_refolds(self, world, tmp_path):
        run_dir = tmp_path / "run"
        first = run_incremental_detection(
            world.zonedb, world.whois, run_dir=run_dir
        )
        (run_dir / "checkpoints" / "engine-state.pkl").unlink()
        again = run_incremental_detection(
            world.zonedb, world.whois, run_dir=run_dir, resume=first.run_id
        )
        assert again.result_digest == first.result_digest
        assert self._journaled_resets(run_dir) == ["checkpoint-missing"]

    def test_stale_checkpoint_behind_journal_resets(self, world, tmp_path):
        view = DeltaView(world.zonedb)
        midpoint = view.batches()[len(view.batches()) // 2][0]
        run_dir = tmp_path / "run"
        first = run_incremental_detection(
            world.zonedb, world.whois, run_dir=run_dir, until=midpoint
        )
        checkpoint = run_dir / "checkpoints" / "engine-state.pkl"
        stale = dump_engine_state(_drained_engine_until(world, view.batches()[0][0]))
        checkpoint.write_bytes(stale)
        again = run_incremental_detection(
            world.zonedb, world.whois, run_dir=run_dir, resume=first.run_id
        )
        assert self._journaled_resets(run_dir) == ["checkpoint-behind-journal"]
        batch = DetectionPipeline(world.zonedb, world.whois).run()
        assert again.result_digest == result_digest(batch)

    def test_source_consumer_watermark_only_advances(self, world, tmp_path):
        zonedb, whois = _mini_inputs()
        last = DeltaView(zonedb).last_batch_day()
        run_incremental_detection(
            zonedb, whois, run_dir=tmp_path / "one", consumer="incremental-engine"
        )
        assert zonedb.watermark("incremental-engine") == last
        # A second run directory refolds the same days; the shared
        # dataset-side watermark must not be dragged backwards.
        run_incremental_detection(
            zonedb, whois, run_dir=tmp_path / "two", consumer="incremental-engine"
        )
        assert zonedb.watermark("incremental-engine") == last


def _drained_engine_until(world, until: int) -> IncrementalDetectionEngine:
    engine = IncrementalDetectionEngine(world.whois)
    engine.advance_from(world.zonedb, until=until)
    return engine
