"""The ``lint --fix`` engine: precision, safety, and idempotency."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.code_engine import lint_code_source
from repro.lint.config import LintConfig
from repro.lint.fixes import (
    FIXABLE_RULES,
    apply_fixes,
    fix_source,
    plan_fixes,
)

_PATH = "src/repro/example.py"


def _fix(source: str, **kwargs: object) -> tuple[str, list, list]:
    return fix_source(
        textwrap.dedent(source), _PATH, LintConfig(), **kwargs  # type: ignore[arg-type]
    )


def _fixable_findings(source: str) -> list:
    return [
        d for d in lint_code_source(source, _PATH, LintConfig())
        if d.rule_id in FIXABLE_RULES
    ]


class TestDet004Fix:
    def test_wraps_iterated_set_in_sorted(self) -> None:
        after, applied, _ = _fix("""\
            def f(s):
                for item in set(s):
                    print(item)
        """)
        assert "for item in sorted(set(s)):" in after
        assert [d.rule_id for d in applied] == ["DET004"]

    def test_wraps_order_sensitive_call_argument(self) -> None:
        after, applied, _ = _fix("""\
            def f(s):
                return ",".join({x.lower() for x in s})
        """)
        assert '",".join(sorted({x.lower() for x in s}))' in after
        assert [d.rule_id for d in applied] == ["DET004"]

    def test_multiline_set_expression(self) -> None:
        after, applied, _ = _fix("""\
            def f(a, b):
                merged = set(a) | set(b)
                return list(
                    merged
                )
        """)
        assert "sorted(\n        merged\n    )" in after or "sorted(merged)" in after
        assert applied


class TestDet006Fix:
    def test_replaces_default_and_inserts_guard(self) -> None:
        after, applied, _ = _fix("""\
            def f(items=[], limit=3):
                items.append(limit)
                return items
        """)
        assert "def f(items=None, limit=3):" in after
        assert "    if items is None:\n        items = []\n" in after
        assert [d.rule_id for d in applied] == ["DET006"]

    def test_guard_lands_after_docstring(self) -> None:
        after, _, _ = _fix('''\
            def f(mapping={}):
                """Doc line."""
                return mapping
        ''')
        lines = after.splitlines()
        assert lines[1].strip() == '"""Doc line."""'
        assert lines[2] == "    if mapping is None:"
        assert lines[3] == "        mapping = {}"

    def test_kwonly_and_multiple_defaults(self) -> None:
        after, applied, _ = _fix("""\
            def f(a=[], *, b={}):
                return a, b
        """)
        assert "def f(a=None, *, b=None):" in after
        assert "if a is None:" in after and "if b is None:" in after
        assert len(applied) == 2

    def test_one_line_def_is_skipped_not_mangled(self) -> None:
        source = "def f(items=[]): return items\n"
        after, applied, skipped = _fix(source)
        assert after == source
        assert applied == []
        assert any("insertion" in reason for _, reason in skipped)


class TestDet007Fix:
    def test_replaces_hash_and_adds_import(self) -> None:
        after, applied, _ = _fix("""\
            import json

            def key(value):
                return hash(value) % 64
        """)
        assert "from repro.faults.rng import stable_hash" in after
        assert "return stable_hash(value) % 64" in after
        assert [d.rule_id for d in applied] == ["DET007"]
        # The import lands after the existing import block.
        assert after.index("import json") < after.index("from repro.faults")

    def test_existing_import_is_not_duplicated(self) -> None:
        after, _, _ = _fix("""\
            from repro.faults.rng import stable_hash

            def key(value):
                return hash(value), stable_hash("x")
        """)
        assert after.count("from repro.faults.rng import stable_hash") == 1
        assert "return stable_hash(value), stable_hash" in after

    def test_dunder_hash_untouched(self) -> None:
        source = textwrap.dedent("""\
            class Name:
                def __hash__(self):
                    return hash(self.text)
        """)
        after, applied, _ = _fix(source)
        assert after == source
        assert applied == []


class TestFixPolicy:
    def test_baselined_finding_is_never_rewritten(self) -> None:
        source = textwrap.dedent("""\
            def key(value):
                return hash(value)
        """)
        baseline = Baseline(entries=(
            BaselineEntry("DET007", _PATH, "key", "asserts hash protocol"),
        ))
        after, applied, skipped = fix_source(
            source, _PATH, LintConfig(), baseline
        )
        assert after == source
        assert applied == []
        assert any("baselined" in reason for _, reason in skipped)

    def test_rewritten_source_must_parse_or_revert(self) -> None:
        # Every fix path re-parses; this asserts the guard exists by
        # running the full pipeline over a tricky-but-valid rewrite.
        after, applied, _ = _fix("""\
            def f(s):
                return list({x
                             for x in s})
        """)
        ast.parse(after)
        assert applied

    def test_fix_then_relint_clean_then_noop(self) -> None:
        source = textwrap.dedent("""\
            def order(items=[], *, extra={}):
                tags = {t for t in items}
                key = hash("x")
                return list(tags), sorted(extra), key
        """)
        after, applied, _ = fix_source(source, _PATH, LintConfig())
        assert applied
        assert _fixable_findings(after) == []
        again, applied2, _ = fix_source(after, _PATH, LintConfig())
        assert again == after
        assert applied2 == []


#: Building blocks for the property test: each template contains at
#: least one fixable finding and parametrizes over identifier names.
_TEMPLATES = (
    "def f_{n}({a}=[]):\n    return {a}\n",
    "def f_{n}({a}={{}}, *, {b}=[]):\n    return {a}, {b}\n",
    "def f_{n}({a}):\n    for x in set({a}):\n        print(x)\n",
    "def f_{n}({a}):\n    return ','.join({{y for y in {a}}})\n",
    "def f_{n}({a}):\n    return hash({a})\n",
    "def f_{n}({a}):\n    return list({a} | set('x')), hash({a})\n"
    "",
    "def f_{n}({a}, {b}=[]):\n    {b}.append(hash({a}))\n    return list(set({b}))\n",
)

_names = st.sampled_from(("items", "values", "payload", "entries", "data"))


@st.composite
def _modules(draw: st.DrawFn) -> str:
    count = draw(st.integers(min_value=1, max_value=4))
    chunks = []
    for index in range(count):
        template = draw(st.sampled_from(_TEMPLATES))
        a = draw(_names)
        b = draw(_names.filter(lambda name: name != a))
        chunks.append(template.format(n=index, a=a, b=b))
    return "\n\n".join(chunks)


class TestFixProperties:
    @settings(max_examples=40, deadline=None)
    @given(_modules())
    def test_fix_parses_relints_clean_and_is_idempotent(
        self, source: str
    ) -> None:
        assert _fixable_findings(source), "template lost its finding"
        after, applied, _ = fix_source(source, _PATH, LintConfig())
        assert applied, "nothing was fixed"
        ast.parse(after)  # the rewrite is valid Python
        assert _fixable_findings(after) == []  # and re-lints clean
        again, applied2, _ = fix_source(after, _PATH, LintConfig())
        assert again == after and applied2 == []  # and is a fixed point


class TestPlanAndApply:
    def test_plan_apply_roundtrip(self, tmp_path: Path) -> None:
        target = tmp_path / "src" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "def f(items=[]):\n    return items\n", encoding="utf-8"
        )
        config = LintConfig(root=tmp_path)
        fixes = plan_fixes([tmp_path / "src"], config=config)
        assert [fix.path for fix in fixes] == ["src/mod.py"]
        assert fixes[0].changed
        diff = fixes[0].unified_diff()
        assert "-def f(items=[]):" in diff
        assert "+def f(items=None):" in diff
        # Nothing on disk until apply_fixes.
        assert target.read_text(encoding="utf-8").startswith("def f(items=[])")
        written = apply_fixes(fixes)
        assert [fix.path for fix in written] == ["src/mod.py"]
        assert "if items is None:" in target.read_text(encoding="utf-8")
        # Second plan over the fixed tree is empty.
        assert plan_fixes([tmp_path / "src"], config=config) == []


class TestCliFix:
    def _run(self, args: list[str], cwd: Path):
        import os
        import subprocess
        import sys

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=env, capture_output=True, text=True,
        )

    def test_fix_rewrites_and_exits_clean(self, tmp_path: Path) -> None:
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(items=[]):\n    return items\n", encoding="utf-8"
        )
        proc = self._run(
            ["lint", "--fix", "--root", str(tmp_path), str(target)], tmp_path
        )
        assert proc.returncode == 0, proc.stderr
        assert "fixed mod.py: 1 finding(s)" in proc.stdout
        assert "if items is None:" in target.read_text(encoding="utf-8")
        # A second --fix run is a no-op (the CI idempotency gate).
        again = self._run(
            ["lint", "--fix", "--root", str(tmp_path), str(target)], tmp_path
        )
        assert again.returncode == 0
        assert "fixed 0 file(s)" in again.stderr

    def test_fix_diff_previews_without_writing(self, tmp_path: Path) -> None:
        target = tmp_path / "mod.py"
        source = "def f(s):\n    return list(set(s))\n"
        target.write_text(source, encoding="utf-8")
        proc = self._run(
            ["lint", "--fix-diff", "--root", str(tmp_path), str(target)],
            tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert "+    return list(sorted(set(s)))" in proc.stdout
        assert target.read_text(encoding="utf-8") == source

    def test_prune_baseline_drops_stale_entries(self, tmp_path: Path) -> None:
        import json

        (tmp_path / "clean.py").write_text("VALUE = 3\n", encoding="utf-8")
        baseline_path = tmp_path / "lint-baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "DET001",
                "path": "gone.py",
                "symbol": "<module>",
                "reason": "file was deleted",
            }],
        }), encoding="utf-8")
        proc = self._run(
            [
                "lint", "--prune-baseline", "--root", str(tmp_path),
                str(tmp_path / "clean.py"),
            ],
            tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Pruned 1 stale" in proc.stderr
        pruned = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert pruned["entries"] == []


class TestSelfApplication:
    """``--fix`` over the repo itself must be a no-op.

    The tree is kept fix-clean (every fixable finding is either fixed
    or baselined), which is what makes the CI idempotency job — run
    ``--fix`` twice, demand an empty git diff — a meaningful gate. It
    also implies ``riskybiz detect`` outputs are bit-identical before
    and after ``--fix``, since --fix rewrites nothing.
    """

    def test_repo_is_fix_clean(self) -> None:
        root = Path(__file__).resolve().parent.parent
        fixes = plan_fixes([root / "src", root / "tests"], root=root)
        changed = [fix.path for fix in fixes if fix.changed]
        assert changed == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
