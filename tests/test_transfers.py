"""Tests for EPP domain transfers and their WHOIS/remediation effects."""

import pytest

from repro.epp.errors import EppError, ResultCode
from repro.epp.objects import DomainStatus
from repro.epp.repository import EppRepository
from repro.whois.archive import WhoisArchive


@pytest.fixture()
def repo():
    repository = EppRepository("sim-verisign", ["com"])
    repository.create_domain("godaddy", "moving.com", day=0)
    repository.domain("moving.com").auth_info = "s3cret"
    return repository


class TestRepositoryTransfer:
    def test_transfer_changes_sponsor(self, repo):
        obj = repo.transfer_domain("enom", "moving.com", "s3cret", day=10)
        assert obj.sponsor == "enom"

    def test_bad_auth_info_rejected(self, repo):
        with pytest.raises(EppError) as err:
            repo.transfer_domain("enom", "moving.com", "wrong", day=10)
        assert err.value.code is ResultCode.AUTHORIZATION_ERROR
        assert repo.domain("moving.com").sponsor == "godaddy"

    def test_transfer_to_current_sponsor_rejected(self, repo):
        with pytest.raises(EppError) as err:
            repo.transfer_domain("godaddy", "moving.com", "s3cret", day=10)
        assert err.value.code is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_transfer_prohibited_status(self, repo):
        repo.set_domain_status(
            "godaddy", "moving.com", day=5,
            add=[DomainStatus.CLIENT_TRANSFER_PROHIBITED],
        )
        with pytest.raises(EppError) as err:
            repo.transfer_domain("enom", "moving.com", "s3cret", day=10)
        assert err.value.code is ResultCode.STATUS_PROHIBITS_OPERATION

    def test_empty_auth_info_is_open(self, repo):
        """Objects without authInfo (simulation default) transfer freely."""
        repo.create_domain("godaddy", "open.com", day=0)
        obj = repo.transfer_domain("enom", "open.com", "", day=10)
        assert obj.sponsor == "enom"

    def test_gaining_registrar_can_then_manage(self, repo):
        repo.transfer_domain("enom", "moving.com", "s3cret", day=10)
        repo.renew_domain("enom", "moving.com", day=11)
        with pytest.raises(EppError):
            repo.renew_domain("godaddy", "moving.com", day=11)

    def test_audit_event_emitted(self):
        events = []
        repository = EppRepository(
            "x", ["com"], audit_hook=lambda d, op, det: events.append((op, det))
        )
        repository.create_domain("a", "m.com", day=0)
        repository.transfer_domain("b", "m.com", "", day=5)
        op, detail = events[-1]
        assert op == "domain:transfer"
        assert detail == {"domain": "m.com", "gaining": "b", "losing": "a"}


class TestWhoisTransfer:
    def test_registrar_at_honours_transfer(self):
        whois = WhoisArchive()
        whois.record_registration("m.com", "godaddy", day=0, period_years=5)
        whois.record_transfer("m.com", "enom", day=100)
        assert whois.registrar_at("m.com", 50) == "godaddy"
        assert whois.registrar_at("m.com", 100) == "enom"
        assert whois.registrar_at("m.com", 500) == "enom"

    def test_multiple_transfers_ordered(self):
        whois = WhoisArchive()
        whois.record_registration("m.com", "a", day=0, period_years=9)
        whois.record_transfer("m.com", "b", day=100)
        whois.record_transfer("m.com", "c", day=200)
        assert whois.registrar_at("m.com", 150) == "b"
        assert whois.registrar_at("m.com", 250) == "c"

    def test_transfer_is_not_a_new_epoch(self):
        """A transfer must never look like a hijack re-registration."""
        whois = WhoisArchive()
        whois.record_registration("m.com", "a", day=0, period_years=9)
        whois.record_transfer("m.com", "b", day=100)
        assert len(whois.history("m.com")) == 1
        assert whois.first_registration_after("m.com", 50) is None

    def test_serialization_keeps_transfers(self, tmp_path):
        whois = WhoisArchive()
        whois.record_registration("m.com", "a", day=0, period_years=9)
        whois.record_transfer("m.com", "b", day=100)
        path = tmp_path / "whois.jsonl"
        whois.dump(path)
        restored = WhoisArchive.load(path)
        assert restored.registrar_at("m.com", 150) == "b"


class TestWorldTransfers:
    def test_transfers_happen(self, default_bundle):
        world = default_bundle.world
        transferred = [
            client
            for hoster in world.plan.hosters
            for client in hoster.clients
            if client.transfer_day is not None
        ]
        assert transferred
        executed = 0
        for client in transferred[:50]:
            record = world.whois.current(client.domain, client.transfer_day)
            if record is not None and record.transfers:
                executed += 1
        assert executed > 0

    def test_repo_sponsor_matches_whois_after_transfer(self, default_bundle):
        world = default_bundle.world
        end = world.config.end_day - 1
        checked = 0
        for hoster in world.plan.hosters:
            for client in hoster.clients:
                if client.transfer_day is None:
                    continue
                registry = world.roster.registry_for(client.domain)
                if not registry.repository.domain_exists(client.domain):
                    continue
                record = world.whois.current(client.domain, end)
                if record is None or not record.transfers:
                    continue
                assert registry.repository.domain(client.domain).sponsor == \
                    record.registrar_on(end)
                checked += 1
        assert checked > 0
