"""Unit tests for individual detection stages (§3.2) on synthetic data."""

import pytest

from repro.detection.candidates import CandidateNameserver, build_candidate_set
from repro.detection.matching import OriginalNameserverMatcher
from repro.detection.repository_check import RepositoryMap, SingleRepositoryFilter
from repro.detection.resolvability import ResolvabilityAnalyzer
from repro.detection.substrings import mine_substrings, patterns_matching
from repro.detection.testns import TestNameserverFilter
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase


@pytest.fixture()
def db():
    database = ZoneDatabase(["com", "net", "org", "biz"])
    # A healthy third-party provider (delegated, glue).
    database.set_delegation(0, "provider.net", ["ns1.provider.net"])
    database.set_glue(0, "ns1.provider.net")
    # A healthy client.
    database.set_delegation(0, "healthy.com", ["ns1.provider.net"])
    # A hoster that dies on day 100 with a sacrificial rename.
    database.set_delegation(0, "hoster.com", ["ns1.hoster.com"])
    database.set_glue(0, "ns1.hoster.com")
    database.set_delegation(0, "victim.com", ["ns1.hoster.com"])
    database.set_delegation(100, "victim.com", ["ns1.hosterx7k2q.biz"])
    database.remove_delegation(100, "hoster.com")
    database.remove_glue(100, "ns1.hoster.com")
    return database


class TestResolvability:
    def test_glue_makes_resolvable(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.is_resolvable("ns1.provider.net", 5) is True

    def test_delegated_domain_makes_resolvable(self, db):
        db.set_delegation(0, "other.com", ["dns.provider.net"])
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.is_resolvable("dns.provider.net", 5) is True

    def test_sacrificial_is_unresolvable(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.is_resolvable("ns1.hosterx7k2q.biz", 100) is False

    def test_uncovered_tld_is_unknown(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.is_resolvable("ns1.foreign.nl", 5) is None

    def test_resolvable_intervals_merge_glue_and_presence(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        intervals = analyzer.resolvable_intervals("ns1.hoster.com")
        assert len(intervals) == 1
        assert intervals[0].start == 0 and intervals[0].end == 100

    def test_first_resolvable(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.first_resolvable("ns1.provider.net") == 0
        assert analyzer.first_resolvable("ns1.hosterx7k2q.biz") is None

    def test_unresolvable_at_first_reference(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.unresolvable_at_first_reference("ns1.hosterx7k2q.biz")
        assert analyzer.unresolvable_at_first_reference("ns1.provider.net") is False

    def test_never_referenced_is_none(self, db):
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.unresolvable_at_first_reference("ghost.ns.com") is None

    def test_hijacked_later_still_candidate(self, db):
        """Becoming resolvable later must not hide the candidate."""
        db.set_delegation(150, "hosterx7k2q.biz", ["ns1.parking.nl"])
        analyzer = ResolvabilityAnalyzer(db)
        assert analyzer.unresolvable_at_first_reference("ns1.hosterx7k2q.biz")


class TestCandidateSet:
    def test_contains_sacrificial(self, db):
        names = {c.name for c in build_candidate_set(db)}
        assert "ns1.hosterx7k2q.biz" in names

    def test_excludes_healthy(self, db):
        names = {c.name for c in build_candidate_set(db)}
        assert "ns1.provider.net" not in names
        assert "ns1.hoster.com" not in names

    def test_candidate_carries_witnesses(self, db):
        candidate = next(
            c for c in build_candidate_set(db)
            if c.name == "ns1.hosterx7k2q.biz"
        )
        assert candidate.first_seen == 100
        assert candidate.referencing_domains == ("victim.com",)
        assert candidate.reference_count == 1

    def test_sorted_by_first_seen(self, db):
        db.set_delegation(50, "early.com", ["ns.early-typo.biz"])
        candidates = build_candidate_set(db)
        days = [c.first_seen for c in candidates]
        assert days == sorted(days)


class TestSubstringMiner:
    def test_finds_common_pattern(self):
        names = [f"dropthishost-{i:08d}.biz" for i in range(30)]
        names += [f"ns{i}.random{i}.com" for i in range(10)]
        patterns = mine_substrings(names, min_support=10)
        assert any("dropthishost" in p.substring for p in patterns)

    def test_support_counts_names_not_occurrences(self):
        names = ["ababab.com"] * 3
        patterns = mine_substrings(names, min_length=2, min_support=3, max_length=4)
        ab = [p for p in patterns if p.substring == "abab"]
        assert ab and ab[0].support == 3

    def test_non_maximal_suppressed(self):
        names = [f"pleasedropthishost{i}.x.biz" for i in range(20)]
        patterns = mine_substrings(names, min_support=10)
        texts = [p.substring for p in patterns]
        assert "pleasedropthishost" in texts
        # Shorter fragments with identical support were absorbed.
        assert "leasedropthishost" not in texts

    def test_min_support_filters(self):
        patterns = mine_substrings(["onlyonce.com"], min_support=2)
        assert patterns == []

    def test_patterns_matching_helper(self):
        patterns = mine_substrings(
            [f"dropthishost-{i}.biz" for i in range(10)], min_support=5
        )
        assert patterns_matching(patterns, "dropthishost")

    def test_top_limits_output(self):
        names = [f"verycommonsubstring{i}.biz" for i in range(30)]
        assert len(mine_substrings(names, min_support=2, top=5)) <= 5


class TestTestNsFilter:
    def test_emt_prefix_detected(self):
        filt = TestNameserverFilter()
        assert filt.is_test_nameserver(
            "emt-ns1.emt-t-407979799-1575645880157-2-u.com"
        )

    def test_normal_names_kept(self):
        filt = TestNameserverFilter()
        assert not filt.is_test_nameserver("ns1.hosterx7k2q.biz")
        assert not filt.is_test_nameserver("dropthishost-abc.biz")

    def test_partition(self):
        filt = TestNameserverFilter()
        candidates = [
            CandidateNameserver("emt-ns1.emt-t-1-2-3-u.com", 0, ()),
            CandidateNameserver("ns1.normal.biz", 0, ()),
        ]
        kept, removed = filt.partition(candidates)
        assert [c.name for c in kept] == ["ns1.normal.biz"]
        assert [c.name for c in removed] == ["emt-ns1.emt-t-1-2-3-u.com"]

    def test_case_insensitive(self):
        filt = TestNameserverFilter()
        assert filt.is_test_nameserver("EMT-NS1.EMT-T-1-2-3-U.COM".lower())


class TestSingleRepositoryFilter:
    def test_cross_repo_violation(self, db):
        db.set_delegation(10, "span1.com", ["ns.shared-typo.biz"])
        db.set_delegation(10, "span2.org", ["ns.shared-typo.biz"])
        filt = SingleRepositoryFilter(db)
        candidate = CandidateNameserver(
            "ns.shared-typo.biz", 10, ("span1.com", "span2.org")
        )
        assert filt.violates(candidate)

    def test_same_repo_ok(self, db):
        filt = SingleRepositoryFilter(db)
        candidate = CandidateNameserver(
            "ns1.hosterx7k2q.biz", 100, ("victim.com",)
        )
        assert not filt.violates(candidate)

    def test_same_tld_violation(self, db):
        db.set_delegation(10, "same1.com", ["ns.sametld-typo.com"])
        filt = SingleRepositoryFilter(db)
        candidate = CandidateNameserver("ns.sametld-typo.com", 10, ("same1.com",))
        assert filt.violates(candidate)

    def test_no_domains_no_violation(self, db):
        filt = SingleRepositoryFilter(db)
        assert not filt.violates(CandidateNameserver("ghost.biz", 0, ()))

    def test_repository_map(self):
        repo_map = RepositoryMap()
        assert repo_map.operator_of("a.com") == "sim-verisign"
        assert repo_map.operator_of("a.gov") == "sim-verisign"
        assert repo_map.operator_of("a.nl") is None
        assert repo_map.repositories_of(["a.com", "b.gov"]) == {"sim-verisign"}
        assert len(repo_map.repositories_of(["a.com", "b.org"])) == 2


class TestOriginalMatcher:
    @pytest.fixture()
    def whois(self):
        archive = WhoisArchive()
        archive.record_registration("hoster.com", "enom", day=0, period_years=1)
        archive.record_deletion("hoster.com", day=100)
        return archive

    def test_match_found(self, db, whois):
        matcher = OriginalNameserverMatcher(db, whois)
        candidate = CandidateNameserver(
            "ns1.hosterx7k2q.biz", 100, ("victim.com",)
        )
        match = matcher.match(candidate)
        assert match is not None
        assert match.original_ns == "ns1.hoster.com"
        assert match.original_domain == "hoster.com"
        assert match.registrar == "enom"
        assert match.sld_suffix == "x7k2q"

    def test_no_match_for_unrelated_name(self, db, whois):
        db.set_delegation(100, "victim.com", ["dropthishost-999.biz"])
        matcher = OriginalNameserverMatcher(db, whois)
        candidate = CandidateNameserver(
            "dropthishost-999.biz", 100, ("victim.com",)
        )
        assert matcher.match(candidate) is None

    def test_requires_day_before_disappearance(self, db, whois):
        """The original must have vanished exactly when the candidate appeared."""
        matcher = OriginalNameserverMatcher(db, whois)
        candidate = CandidateNameserver(
            "ns1.hosterx7k2q.biz", 101, ("victim.com",)
        )
        assert matcher.match(candidate) is None

    def test_short_sld_rejected(self, db, whois):
        db.set_delegation(200, "tiny.com", ["ns1.ab.com"])
        db.set_delegation(201, "tiny.com", ["ns1.abxxxx.biz"])
        matcher = OriginalNameserverMatcher(db, whois)
        candidate = CandidateNameserver("ns1.abxxxx.biz", 201, ("tiny.com",))
        assert matcher.match(candidate) is None

    def test_match_all_partitions(self, db, whois):
        matcher = OriginalNameserverMatcher(db, whois)
        good = CandidateNameserver("ns1.hosterx7k2q.biz", 100, ("victim.com",))
        bad = CandidateNameserver("unrelated.biz", 100, ("victim.com",))
        matches, unmatched = matcher.match_all([good, bad])
        assert [m.candidate for m in matches] == ["ns1.hosterx7k2q.biz"]
        assert [c.name for c in unmatched] == ["unrelated.biz"]
