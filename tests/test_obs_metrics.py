"""Metrics registry: instrument semantics, bucket stability, snapshots."""

from __future__ import annotations

import pytest

from repro.obs import runtime as obs
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DURATION_BUCKETS_S,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import validate_metrics_snapshot


class TestCounter:
    def test_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("x")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_bucket_assignment_is_stable(self):
        histogram = Histogram("d", (1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0):
            histogram.observe(value)
        # bisect_right semantics: a value equal to an edge falls into
        # the bucket above it; 1000.0 lands in the overflow bucket.
        assert histogram.counts == [1, 2, 2, 1]
        assert histogram.count == 6
        assert histogram.total == pytest.approx(1115.5)

    def test_boundaries_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValueError):
            Histogram("bad", ())
        with pytest.raises(ValueError):
            Histogram("bad", (2.0, 1.0))

    def test_to_dict_shape(self):
        histogram = Histogram("d", DURATION_BUCKETS_S)
        histogram.observe(0.003)
        document = histogram.to_dict()
        assert document["boundaries"] == list(DURATION_BUCKETS_S)
        assert len(document["counts"]) == len(DURATION_BUCKETS_S) + 1
        assert sum(document["counts"]) == document["count"] == 1

    def test_fixed_default_boundaries_unchanged(self):
        # The boundary tuples are part of the snapshot contract: changing
        # them silently would make metrics.json files incomparable.
        assert DURATION_BUCKETS_S[0] == 0.0001
        assert DURATION_BUCKETS_S[-1] == 60.0
        assert len(DURATION_BUCKETS_S) == 16
        assert COUNT_BUCKETS == (
            1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000,
        )


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_boundary_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", DURATION_BUCKETS_S)
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("h", COUNT_BUCKETS)

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h")
        counter.inc(3)
        histogram.observe(0.5)
        registry.reset()
        # Cached instrument objects stay live after a reset.
        assert counter is registry.counter("c")
        assert counter.value == 0
        assert histogram.count == 0
        assert all(bucket == 0 for bucket in histogram.counts)

    def test_snapshot_is_valid_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["format"] == METRICS_FORMAT
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        assert validate_metrics_snapshot(snapshot) == []


class TestRuntimeHelpers:
    def test_global_registry_roundtrip(self):
        obs.reset_metrics()
        obs.counter("test.runtime.counter").inc(2)
        snapshot = obs.metrics().snapshot()
        assert snapshot["counters"]["test.runtime.counter"] == 2

    def test_timed_records_one_observation(self):
        obs.reset_metrics()
        with obs.timed("test.runtime.duration_s"):
            pass
        histogram = obs.histogram("test.runtime.duration_s")
        assert histogram.count == 1
        assert histogram.total >= 0

    def test_timed_records_even_on_exception(self):
        obs.reset_metrics()
        with pytest.raises(RuntimeError):
            with obs.timed("test.runtime.exc_s"):
                raise RuntimeError("boom")
        assert obs.histogram("test.runtime.exc_s").count == 1

    def test_count_histogram_uses_count_buckets(self):
        obs.reset_metrics()
        histogram = obs.count_histogram("test.runtime.sizes")
        assert histogram.boundaries == COUNT_BUCKETS

    def test_span_and_event_are_noops_without_tracer(self):
        assert obs.active_tracer() is None
        with obs.span("anything", shard=1) as span:
            span.set(records=3)
            assert span.span_id == ""
        obs.trace_event("nothing.listens")  # must not raise
