"""Tests for TLD zone containers and master-file round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.errors import ZoneError
from repro.dnscore.zone import Zone


@pytest.fixture()
def zone():
    z = Zone("com", serial=7)
    z.set_delegation("example.com", ["ns1.foo.com", "ns2.foo.com"])
    z.set_glue("ns1.example.com", ["192.0.2.1"])
    return z


class TestDelegations:
    def test_set_and_read(self, zone):
        assert zone.nameservers_of("example.com") == {"ns1.foo.com", "ns2.foo.com"}

    def test_contains(self, zone):
        assert "example.com" in zone
        assert "missing.com" not in zone

    def test_replace_delegation(self, zone):
        zone.set_delegation("example.com", ["ns9.bar.net"])
        assert zone.nameservers_of("example.com") == {"ns9.bar.net"}

    def test_remove_delegation(self, zone):
        zone.remove_delegation("example.com")
        assert "example.com" not in zone

    def test_remove_missing_is_noop(self, zone):
        zone.remove_delegation("missing.com")

    def test_len_counts_domains(self, zone):
        assert len(zone) == 1

    def test_rejects_out_of_zone_domain(self, zone):
        with pytest.raises(ZoneError):
            zone.set_delegation("example.org", ["ns1.foo.com"])

    def test_rejects_deep_delegation(self, zone):
        with pytest.raises(ZoneError):
            zone.set_delegation("www.example.com", ["ns1.foo.com"])

    def test_rejects_empty_ns_set(self, zone):
        with pytest.raises(ZoneError):
            zone.set_delegation("other.com", [])

    def test_case_insensitive(self, zone):
        assert zone.nameservers_of("EXAMPLE.COM") == {"ns1.foo.com", "ns2.foo.com"}


class TestGlue:
    def test_set_and_read(self, zone):
        assert zone.glue_of("ns1.example.com") == {"192.0.2.1"}

    def test_remove(self, zone):
        zone.remove_glue("ns1.example.com")
        assert zone.glue_of("ns1.example.com") == frozenset()

    def test_out_of_bailiwick_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.set_glue("ns1.example.org", ["192.0.2.1"])

    def test_empty_glue_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.set_glue("ns2.example.com", [])

    def test_glue_hosts(self, zone):
        assert zone.glue_hosts() == {"ns1.example.com"}


class TestSerialization:
    def test_round_trip(self, zone):
        parsed = Zone.from_text(zone.to_text())
        assert parsed.origin == "com"
        assert parsed.serial == 7
        assert parsed.nameservers_of("example.com") == zone.nameservers_of("example.com")
        assert parsed.glue_of("ns1.example.com") == zone.glue_of("ns1.example.com")

    def test_text_contains_origin(self, zone):
        assert zone.to_text().startswith("$ORIGIN com.")

    def test_text_contains_soa(self, zone):
        assert " SOA " in zone.to_text()

    def test_from_text_requires_origin(self):
        with pytest.raises(ZoneError):
            Zone.from_text("example.com. 60 IN NS ns1.foo.com\n")

    def test_comments_and_blanks_ignored(self, zone):
        text = zone.to_text() + "\n; a comment\n\n"
        assert Zone.from_text(text).domains() == zone.domains()

    labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10)

    @given(
        st.dictionaries(
            labels,
            st.sets(labels, min_size=1, max_size=3),
            min_size=1,
            max_size=12,
        )
    )
    def test_round_trip_property(self, table):
        zone = Zone("com")
        for sld, ns_labels in table.items():
            zone.set_delegation(
                f"{sld}.com", {f"ns.{label}.net" for label in ns_labels}
            )
        parsed = Zone.from_text(zone.to_text())
        assert parsed.domains() == zone.domains()
        for domain in zone.domains():
            assert parsed.nameservers_of(domain) == zone.nameservers_of(domain)


class TestCopyAndRecords:
    def test_copy_is_independent(self, zone):
        clone = zone.copy()
        clone.set_delegation("other.com", ["ns1.foo.com"])
        assert "other.com" not in zone

    def test_records_stream_order(self, zone):
        records = list(zone.records())
        assert records[0].rtype.value == "SOA"
        types = [r.rtype.value for r in records[1:]]
        assert types == sorted(types, key=lambda t: {"NS": 0, "A": 1}[t])

    def test_repr_mentions_counts(self, zone):
        assert "domains=1" in repr(zone)
