"""Tests for data-set statistics and CSV exports."""

import csv

import pytest

from repro.analysis.export import export_all
from repro.zonedb.database import ZoneDatabase
from repro.zonedb.stats import dataset_stats


class TestDatasetStats:
    @pytest.fixture()
    def db(self):
        database = ZoneDatabase(["com", "org"])
        database.set_delegation(0, "a.com", ["ns1.x.net", "ns2.x.net"])
        database.set_delegation(5, "b.com", ["ns1.x.net"])
        database.set_delegation(5, "c.org", ["ns1.y.net"])
        database.advance(100)
        return database

    def test_counts(self, db):
        stats = dataset_stats(db)
        assert stats.total_domains == 3
        assert stats.total_nameservers == 3
        assert stats.domains_per_tld == {"com": 2, "org": 1}
        assert stats.observation_days == 100
        assert stats.delegation_records == 4

    def test_ns_load_distribution(self, db):
        stats = dataset_stats(db)
        assert stats.max_domains_per_ns == 2  # ns1.x.net serves a+b
        assert stats.median_domains_per_ns >= 1

    def test_multi_ns_fraction(self, db):
        stats = dataset_stats(db)
        assert stats.multi_ns_domain_fraction == pytest.approx(1 / 3)

    def test_rows_render(self, db):
        rows = dataset_stats(db).rows()
        labels = [label for label, _v in rows]
        assert "distinct domains" in labels
        assert "  .com domains" in labels

    def test_empty_database(self):
        stats = dataset_stats(ZoneDatabase())
        assert stats.total_domains == 0
        assert stats.median_domains_per_ns == 0.0

    def test_world_scale_sanity(self, tiny_bundle):
        stats = dataset_stats(tiny_bundle.world.zonedb)
        assert stats.total_domains > 500
        assert stats.domains_per_tld.get("com", 0) > stats.domains_per_tld.get("us", 0)


class TestExports:
    @pytest.fixture(scope="class")
    def exported(self, tiny_bundle, tmp_path_factory):
        out = tmp_path_factory.mktemp("csv")
        paths = export_all(tiny_bundle.study, out)
        return {path.name: path for path in paths}

    def test_all_files_written(self, exported):
        assert set(exported) == {
            "figure3_new_hijackable_per_month.csv",
            "figure4_new_hijacked_per_month.csv",
            "figure5_value_scatter.csv",
            "figure6_time_to_exploit.csv",
            "figure7_durations.csv",
            "tables_idioms.csv",
        }

    def _read(self, path):
        with path.open() as handle:
            return list(csv.DictReader(handle))

    def test_figure3_matches_series(self, exported, tiny_bundle):
        from repro.analysis.exposure import new_hijackable_per_month
        rows = self._read(exported["figure3_new_hijackable_per_month.csv"])
        series = new_hijackable_per_month(tiny_bundle.study)
        assert len(rows) == len(series)
        total_csv = sum(int(r["new_hijackable_domains"]) for r in rows)
        assert total_csv == sum(series.values())

    def test_figure5_flags_are_binary(self, exported):
        rows = self._read(exported["figure5_value_scatter.csv"])
        assert rows
        assert {r["hijacked"] for r in rows} <= {"0", "1"}

    def test_figure6_has_both_populations(self, exported):
        rows = self._read(exported["figure6_time_to_exploit.csv"])
        populations = {r["population"] for r in rows}
        assert populations == {"nameserver", "domain"}

    def test_figure7_has_three_curves(self, exported):
        rows = self._read(exported["figure7_durations.csv"])
        assert {r["curve"] for r in rows} == {
            "hijackable_never_hijacked", "hijackable_hijacked", "hijacked"
        }

    def test_tables_split_by_hijackable(self, exported):
        rows = self._read(exported["tables_idioms.csv"])
        assert {r["hijackable"] for r in rows} == {"0", "1"}
