"""Telemetry end-to-end: tracing never changes results, traces converge.

The telemetry plane's contract with the determinism story:

* running detection with tracing on produces the same result digest as
  running it with tracing off;
* a traced run emits ``trace.jsonl`` and ``metrics.json`` that validate
  against the telemetry schemas;
* a kill-and-resume chaos trial converges on the same canonical trace
  content as the uninterrupted baseline;
* in the process-pool backend, every ``supervisor.retry`` trace event
  matches a journaled ``shard-start`` re-attempt one-for-one.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.faults.process import ChaosMonkey, ProcessChaosConfig
from repro.obs.schema import validate_metrics_file, validate_trace_file
from repro.obs.tracer import canonical_spans, read_trace, trace_content_digest
from repro.runner.chaos_harness import run_kill_resume_trial
from repro.runner.execution import (
    METRICS_NAME,
    TRACE_NAME,
    run_supervised_detection,
)
from repro.runner.journal import RunJournal
from repro.runner.supervisor import SupervisorPolicy

SCALE = 0.06
SEED = 2021
SHARDS = 2


@pytest.fixture(scope="module")
def world():
    from repro.ecosystem.config import default_scenario
    from repro.ecosystem.world import World

    return World(default_scenario(SEED).scaled(SCALE)).run()


class TestTracingIsContentNeutral:
    def test_trace_on_off_bit_identical(self, world, tmp_path):
        plain = run_supervised_detection(
            world.zonedb, world.whois, run_dir=tmp_path / "plain", shards=SHARDS
        )
        traced = run_supervised_detection(
            world.zonedb,
            world.whois,
            run_dir=tmp_path / "traced",
            shards=SHARDS,
            trace=True,
        )
        assert traced.result_digest == plain.result_digest
        assert not (tmp_path / "plain" / TRACE_NAME).exists()
        assert not (tmp_path / "plain" / METRICS_NAME).exists()
        assert (tmp_path / "traced" / TRACE_NAME).exists()
        assert (tmp_path / "traced" / METRICS_NAME).exists()

    def test_traced_artifacts_validate_and_cover_the_run(self, world, tmp_path):
        run_supervised_detection(
            world.zonedb,
            world.whois,
            run_dir=tmp_path / "run",
            shards=SHARDS,
            trace=True,
            profile=True,
        )
        trace_path = tmp_path / "run" / TRACE_NAME
        metrics_path = tmp_path / "run" / METRICS_NAME
        assert validate_trace_file(trace_path) == []
        assert validate_metrics_file(metrics_path) == []

        records = read_trace(trace_path)
        paths = [span["path"] for span in canonical_spans(records)]
        assert "run" in paths and "run/merge" in paths
        for shard in range(SHARDS):
            assert f"run/shard-{shard}/candidates" in paths
            assert f"run/shard-{shard}/match" in paths

        document = json.loads(metrics_path.read_text(encoding="utf-8"))
        counters = document["counters"]
        assert counters["runner.shards_completed"] == SHARDS
        assert counters["pipeline.stage_runs.candidates"] == SHARDS
        assert any(
            name.startswith("pipeline.stage.") for name in document["histograms"]
        )
        # --profile adds per-stage wall/memory gauges to the snapshot.
        assert any(
            name.startswith("profile.stage.") for name in document["gauges"]
        )

    def test_two_traced_runs_share_canonical_content(self, world, tmp_path):
        for name in ("first", "second"):
            run_supervised_detection(
                world.zonedb,
                world.whois,
                run_dir=tmp_path / name,
                shards=SHARDS,
                trace=True,
            )
        first = read_trace(tmp_path / "first" / TRACE_NAME)
        second = read_trace(tmp_path / "second" / TRACE_NAME)
        assert trace_content_digest(first) == trace_content_digest(second)


class TestChaosTraceConvergence:
    def test_kill_resume_trial_traces_identical(self, tmp_path):
        report = run_kill_resume_trial(
            workdir=tmp_path,
            scale=SCALE,
            seed=SEED,
            backend="memory",
            shards=3,
            chaos_seed=7,
            max_kills=4,
            trace=True,
        )
        assert report.kills >= 4
        assert report.bit_identical
        assert report.baseline_trace_digest is not None
        assert report.traces_identical, (
            report.baseline_trace_digest,
            report.chaos_trace_digest,
        )
        assert report.passed, report.verify_issues


class TestProcessPoolRetryEvents:
    def test_journal_and_trace_agree_on_retries(self, world, tmp_path):
        """Satellite check: every supervisor.retry event is journaled.

        With a kill-everything worker chaos config, each shard's first
        attempt dies and is respawned; the journal records the respawn
        as a ``shard-start`` with ``attempt > 1`` and the trace records
        a ``supervisor.retry`` event — the two must match pairwise.
        """
        from repro.ecosystem.config import default_scenario
        from repro.store.artifacts import scenario_digest
        from repro.store.dataset import open_dataset, write_dataset
        from repro.whois.archive import WhoisArchive

        config = default_scenario(SEED).scaled(SCALE)
        dataset_path = write_dataset(
            world.zonedb,
            tmp_path / "dataset.sqlite",
            scenario_digest=scenario_digest(config),
        )
        whois_path = tmp_path / "whois.jsonl"
        world.whois.dump(whois_path)

        run_dir = tmp_path / "run"
        supervised = run_supervised_detection(
            open_dataset(dataset_path),
            WhoisArchive.load(whois_path),
            run_dir=run_dir,
            shards=SHARDS,
            policy=SupervisorPolicy(
                workers=2, max_retries=2, backoff_base_s=0.01,
                heartbeat_timeout_s=60.0, poll_interval_s=0.01,
            ),
            chaos=ChaosMonkey(ProcessChaosConfig(seed=3, kill_worker_rate=1.0)),
            dataset_path=dataset_path,
            whois_path=whois_path,
            trace=True,
        )
        assert all(o.retried for o in supervised.outcomes.values())

        journal = RunJournal.open(run_dir / "journal.jsonl")
        journaled_retries = sorted(
            (int(r.payload["shard"]), int(r.payload["attempt"]))
            for r in journal.records
            if r.type == "shard-start" and int(r.payload.get("attempt", 1)) > 1
        )
        assert journaled_retries  # chaos actually killed something

        records = read_trace(run_dir / TRACE_NAME)
        traced_retries = sorted(
            (int(r.payload["shard"]), int(r.payload["attempt"]))
            for r in records
            if r.type == "event" and r.payload["name"] == "supervisor.retry"
        )
        assert traced_retries == journaled_retries
        spawns = [
            r for r in records
            if r.type == "event" and r.payload["name"] == "supervisor.spawn"
        ]
        assert len(spawns) == SHARDS + len(journaled_retries)
