"""Statistical shape assertions against the paper's findings.

These are the reproduction's acceptance tests: on the full-scale default
world, every qualitative claim of the paper's evaluation must hold. The
bands are deliberately generous — the simulated substrate cannot match
absolute numbers, but who wins, by what rough factor, and where the
crossovers fall must agree (see EXPERIMENTS.md).
"""

import pytest

from repro import simtime
from repro.analysis import desirability, duration, exposure, hijacks, timing
from repro.analysis.actors import hijacker_rows
from repro.analysis.remediation import table5, table6
from repro.analysis.tables import collision_count, table1, table2, table3


@pytest.fixture(scope="module")
def study(default_bundle):
    return default_bundle.study


class TestTable12Shapes:
    def test_godaddy_dominates_hijackable(self, study):
        """Table 2: GoDaddy's two idioms are the largest hijackable rows."""
        rows, _ = table2(study)
        godaddy_ns = sum(r.nameservers for r in rows if r.registrar == "GoDaddy")
        total_ns = sum(r.nameservers for r in rows)
        assert godaddy_ns / total_ns > 0.45

    def test_enom_second(self, study):
        rows, _ = table2(study)
        by_registrar: dict[str, int] = {}
        for row in rows:
            by_registrar[row.registrar] = by_registrar.get(row.registrar, 0) + row.nameservers
        ranked = sorted(by_registrar, key=by_registrar.get, reverse=True)
        assert ranked[:2] == ["GoDaddy", "Enom"]

    def test_hijackable_outnumber_sinks(self, study):
        """Paper: 180,842 hijackable vs 21,782 sink nameservers (~8:1)."""
        _rows1, sink_total = table1(study)
        _rows2, hij_total = table2(study)
        ratio = hij_total.nameservers / max(1, sink_total.nameservers)
        assert 3 < ratio < 25

    def test_sink_rows_have_higher_domain_ratio(self, study):
        """Sink registrars (NetSol/GMO/XinNet) carry more domains per NS."""
        rows1, t1 = table1(study)
        _rows2, t2 = table2(study)
        sink_ratio = t1.affected_domains / max(1, t1.nameservers)
        hij_ratio = t2.affected_domains / max(1, t2.nameservers)
        assert sink_ratio > hij_ratio

    def test_pdth_collisions_occur(self, study):
        """§4: some PLEASEDROPTHISHOST names landed on registered domains."""
        assert collision_count(study) > 0


class TestTable3Shape:
    def test_ns_fraction_small(self, study):
        """Paper: 5.07% of hijackable NS were hijacked."""
        summary = table3(study)
        assert 0.02 < summary.ns_fraction < 0.12

    def test_domain_fraction_much_larger(self, study):
        """Paper: 31.95% of domains — selectivity amplifies ~6x."""
        summary = table3(study)
        assert 0.2 < summary.domain_fraction < 0.6
        assert summary.domain_fraction / summary.ns_fraction > 3.5


class TestFigure3Shape:
    def test_downward_trend(self, study):
        series = exposure.new_hijackable_per_month(study)
        assert exposure.trend_slope(series) < 0
        assert exposure.halves_ratio(series) < 0.85

    def test_exposure_continues_throughout(self, study):
        """Thousands of domains are still newly exposed late in the data."""
        series = exposure.new_hijackable_per_month(study)
        values = list(series.values())
        assert sum(values[-24:]) > 0


class TestFigure4Shape:
    def test_hijacking_is_bursty(self, study):
        hijack_series = hijacks.new_hijacked_per_month(study)
        exposure_series = exposure.new_hijackable_per_month(study)
        assert hijacks.burstiness(hijack_series) > \
            hijacks.burstiness(exposure_series)

    def test_hijacking_spans_the_decade(self, study):
        series = hijacks.new_hijacked_per_month(study)
        values = list(series.values())
        third = len(values) // 3
        assert sum(values[:third]) > 0
        assert sum(values[third:2 * third]) > 0
        assert sum(values[2 * third:]) > 0


class TestFigure5Shape:
    def test_hijackers_take_the_top(self, study):
        points = desirability.value_points(study)
        summary = desirability.selectivity_summary(points)
        assert summary["top_decile_hijacked_fraction"] > 0.3
        assert summary["top_decile_hijacked_fraction"] > \
            3 * summary["overall_hijacked_fraction"]

    def test_hijacked_mean_value_higher(self, study):
        points = desirability.value_points(study)
        summary = desirability.selectivity_summary(points)
        assert summary["mean_value_hijacked"] > \
            5 * summary["mean_value_not_hijacked"]


class TestFigure6Shape:
    def test_domains_hijacked_fast(self, study):
        """Paper: ~50% of domains within ~5 days, >70% within a month."""
        summary = timing.timing_summary(study)
        assert summary["domains_within_5_days"] > 0.25
        assert summary["domains_within_30_days"] > 0.55

    def test_domain_cdf_above_ns_cdf(self, study):
        """Selectivity: big nameservers go first."""
        summary = timing.timing_summary(study)
        assert summary["domains_within_7_days"] > summary["ns_within_7_days"]
        assert summary["domains_within_30_days"] > summary["ns_within_30_days"]

    def test_ns_cdf_has_long_tail(self, study):
        ns_delays = timing.nameserver_delays(study)
        assert timing.cdf_fraction_at(ns_delays, 7) < 0.6


class TestFigure7Shape:
    def test_hijacked_selected_for_long_exposure(self, study):
        """Green CDF above red: never-hijacked skew to short exposure."""
        summary = duration.duration_summary(study)
        assert summary["never_week_fraction"] > summary["hijacked_week_fraction"]

    def test_renewal_cliffs(self, study):
        """Steps near one and two years in the hijacked-days CDF."""
        summary = duration.duration_summary(study)
        assert summary["one_year_step_fraction"] > 0.03
        assert summary["one_year_step_fraction"] > \
            summary["two_year_step_fraction"]


class TestTable4Shape:
    def test_top_actor_has_thousands_scaled(self, study):
        rows = hijacker_rows(study, top=5)
        assert rows[0].domain_count > 100

    def test_known_bulk_actors_in_top5(self, study):
        names = {r.controlling_domain for r in hijacker_rows(study, top=5)}
        expected = {
            "mpower.nl", "protectdelegation.com", "yandex.net",
            "phonesear.ch", "dnspanel.com",
        }
        assert len(names & expected) >= 3

    def test_top5_cover_most_hijacked_domains(self, study):
        rows = hijacker_rows(study, top=5)
        covered = sum(r.domain_count for r in rows)
        assert covered > 0.6 * len(study.hijacked_domains())


class TestTable5Shape:
    def test_remediation_beats_organic_for_ns(self, study):
        """Paper: −9,757 NS vs −4K organic (~2.4x)."""
        delta = table5(study)
        assert delta.ns_delta < delta.baseline_ns_delta  # more negative
        assert abs(delta.ns_delta) > 1.5 * abs(delta.baseline_ns_delta)

    def test_domain_gain_smaller_than_ns_gain(self, study):
        """Paper: NS remediation gained ~2.4x over organic while domains
        gained only ~1.2x — the long tail of small nameservers limits the
        domain-level impact of registrar action."""
        delta = table5(study)
        ns_gain = abs(delta.ns_delta) / max(1, abs(delta.baseline_ns_delta))
        domain_gain = (
            abs(delta.domain_delta) / max(1, abs(delta.baseline_domain_delta))
        )
        assert domain_gain < ns_gain
        assert domain_gain < 5

    def test_population_shrinks_over_window(self, study):
        delta = table5(study)
        assert delta.after.vulnerable_ns < delta.before.vulnerable_ns
        assert delta.after.vulnerable_domains < delta.before.vulnerable_domains


class TestTable6Shape:
    def test_new_idioms_protect_domains(self, study):
        rows, total = table6(study)
        assert total.nameservers > 50
        assert total.domains > 100

    def test_godaddy_largest_adopter(self, study):
        rows, _total = table6(study)
        assert rows[0].registrar == "GoDaddy"
        assert rows[0].idiom == "EMPTY.AS112.ARPA"

    def test_no_hijackable_renames_after_adoption(self, default_bundle):
        """§7.2: very few sacrificial NS still being created (none here)."""
        world = default_bundle.world
        cutoff = world.config.notification_day + 120
        late_hijackable = [
            r for r in world.log.renames
            if r.day > cutoff and r.hijackable and not r.remediation
        ]
        # Registrars that never used hijackable idioms aside, the big
        # three switched; only the small XXXXX.BIZ users may linger.
        offenders = {r.registrar for r in late_hijackable}
        assert "godaddy" not in offenders
        assert "internetbs" not in offenders


class TestMethodologyFunnel:
    def test_candidates_are_small_fraction_of_all_ns(self, default_bundle):
        """Paper: 20M nameservers → 312K candidates (~1.5%). Our synthetic
        world is far denser in anomalies, but candidates must still be a
        strict minority."""
        funnel = default_bundle.pipeline.funnel
        assert funnel.candidates < 0.7 * funnel.total_nameservers

    def test_most_candidates_confirmed_sacrificial(self, default_bundle):
        """Paper: ~200K of 312K candidates end up sacrificial."""
        funnel = default_bundle.pipeline.funnel
        confirmed_fraction = funnel.sacrificial_total / funnel.candidates
        assert confirmed_fraction > 0.5

    def test_namecheap_excluded_from_study(self, default_bundle):
        study = default_bundle.study
        assert len(study.excluded) == \
            default_bundle.world.config.namecheap.host_count
