"""Stateful property testing of the EPP repository.

Hypothesis drives random sequences of provisioning operations (creates,
deletes, renames, delegation updates) through a repository and checks
after every step that the referential-integrity invariants the paper's
mechanism depends on can never be violated:

* link symmetry — a host's ``linked_domains`` matches exactly the
  domains whose NS lists name it;
* subordinate tracking — a domain's subordinate set matches exactly the
  internal hosts whose superordinate it is;
* no dangling internal superordinates — every non-external host's
  superordinate domain object exists;
* zone consistency — the published zone contains precisely the domains
  with nameservers, with their current NS sets.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.epp.errors import EppError
from repro.epp.repository import EppRepository

REGISTRARS = ("regA", "regB")
SLDS = ("alpha", "bravo", "carol", "delta")
HOST_LABELS = ("ns1", "ns2")
EXTERNAL_HOSTS = ("ns1.outside.biz", "ns2.outside.org")
RENAME_TARGETS = (
    "x1.sacrificial.biz", "x2.sacrificial.org",
    "ns1.alpha.com", "ns9.bravo.com",
)

domains_strategy = st.sampled_from([f"{sld}.com" for sld in SLDS])
hosts_strategy = st.sampled_from(
    [f"{label}.{sld}.com" for sld in SLDS for label in HOST_LABELS]
    + list(EXTERNAL_HOSTS)
)
registrar_strategy = st.sampled_from(REGISTRARS)


class EppMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.repo = EppRepository("sim-verisign", ["com"])
        self.day = 0

    def _tick(self) -> int:
        self.day += 1
        return self.day

    # -- operations (failures are legal; invariants must hold regardless) --

    @rule(registrar=registrar_strategy, domain=domains_strategy)
    def create_domain(self, registrar, domain):
        try:
            self.repo.create_domain(registrar, domain, day=self._tick())
        except EppError:
            pass

    @rule(registrar=registrar_strategy, domain=domains_strategy)
    def delete_domain(self, registrar, domain):
        try:
            self.repo.delete_domain(registrar, domain, day=self._tick())
        except EppError:
            pass

    @rule(registrar=registrar_strategy, host=hosts_strategy)
    def create_host(self, registrar, host):
        addresses = [] if host in EXTERNAL_HOSTS else ["192.0.2.7"]
        try:
            self.repo.create_host(
                registrar, host, day=self._tick(), addresses=addresses
            )
        except EppError:
            pass

    @rule(registrar=registrar_strategy, host=hosts_strategy)
    def delete_host(self, registrar, host):
        try:
            self.repo.delete_host(registrar, host, day=self._tick())
        except EppError:
            pass

    @rule(
        registrar=registrar_strategy,
        domain=domains_strategy,
        host=hosts_strategy,
    )
    def add_ns(self, registrar, domain, host):
        try:
            self.repo.update_domain_ns(
                registrar, domain, day=self._tick(), add=[host]
            )
        except EppError:
            pass

    @rule(
        registrar=registrar_strategy,
        domain=domains_strategy,
        host=hosts_strategy,
    )
    def remove_ns(self, registrar, domain, host):
        try:
            self.repo.update_domain_ns(
                registrar, domain, day=self._tick(), remove=[host]
            )
        except EppError:
            pass

    @rule(
        registrar=registrar_strategy,
        host=hosts_strategy,
        new_name=st.sampled_from(RENAME_TARGETS),
    )
    def rename_host(self, registrar, host, new_name):
        try:
            self.repo.rename_host(registrar, host, new_name, day=self._tick())
        except EppError:
            pass

    @rule(domain=domains_strategy)
    def purge_domain(self, domain):
        try:
            self.repo.purge_domain(domain, day=self._tick())
        except EppError:
            pass

    # -- invariants -----------------------------------------------------------

    @invariant()
    def link_symmetry(self):
        referencing: dict[str, set[str]] = {}
        for domain in self.repo.all_domains():
            for ns in domain.nameservers:
                referencing.setdefault(ns, set()).add(domain.name)
        for host in self.repo.all_hosts():
            assert host.linked_domains == referencing.get(host.name, set()), (
                f"link asymmetry at {host.name}"
            )
        # No domain references a host object that does not exist.
        for ns in referencing:
            assert self.repo.host_exists(ns), f"dangling NS reference {ns}"

    @invariant()
    def subordinate_tracking(self):
        expected: dict[str, set[str]] = {}
        for host in self.repo.all_hosts():
            if host.superordinate is not None:
                expected.setdefault(host.superordinate, set()).add(host.name)
        for domain in self.repo.all_domains():
            assert self.repo.subordinate_hosts(domain.name) == expected.get(
                domain.name, set()
            )
        # Tracking never references domains that are gone (purge excepted,
        # which orphans hosts by clearing their superordinate).
        for superordinate in expected:
            assert self.repo.domain_exists(superordinate), (
                f"host subordinate to missing domain {superordinate}"
            )

    @invariant()
    def external_hosts_have_no_superordinate_or_glue(self):
        for host in self.repo.all_hosts():
            if host.external:
                assert host.superordinate is None
                assert not host.addresses

    @invariant()
    def zone_matches_object_state(self):
        zone = self.repo.zone_for("com")
        expected = {
            domain.name: frozenset(domain.nameservers)
            for domain in self.repo.all_domains()
            if domain.nameservers
        }
        assert zone.domains() == frozenset(expected)
        for name, ns_set in expected.items():
            assert zone.nameservers_of(name) == ns_set


EppMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestEppStateMachine = EppMachine.TestCase
