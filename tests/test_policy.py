"""Tests for the deletion machinery (rename-then-delete)."""

import random

import pytest

from repro.epp.registry import Registry, TldPolicy
from repro.registrar.idioms import (
    DropThisHostIdiom,
    Enom123BizIdiom,
    SinkDomainIdiom,
)
from repro.registrar.policy import DeletionMachinery, ensure_sink_domains


@pytest.fixture()
def registry():
    reg = Registry("sim-verisign", [TldPolicy("com"), TldPolicy("net")])
    reg.accredit("regA")
    reg.accredit("regB")
    return reg


@pytest.fixture()
def machinery():
    return DeletionMachinery(random.Random(99))


def build_hoster(registry, *, clients=("bar.com",)):
    """foo.com with ns1/ns2 subordinates; clients delegate to ns2."""
    a = registry.session("regA")
    b = registry.session("regB")
    a.domain_create("foo.com", day=0)
    a.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
    a.host_create("ns2.foo.com", day=0, addresses=["192.0.2.2"])
    a.domain_update_ns("foo.com", day=0, add=["ns1.foo.com", "ns2.foo.com"])
    for client in clients:
        b.domain_create(client, day=1, nameservers=["ns2.foo.com"])
    return a


class TestSimpleDeletion:
    def test_domain_without_hosts_deleted_directly(self, registry, machinery):
        session = registry.session("regA")
        session.domain_create("plain.com", day=0)
        outcome = machinery.delete_domain(
            session, "plain.com", DropThisHostIdiom(), day=5
        )
        assert outcome.deleted
        assert not outcome.created_sacrificial
        assert outcome.errors == []

    def test_unlinked_hosts_are_deleted_not_renamed(self, registry, machinery):
        session = build_hoster(registry, clients=())
        outcome = machinery.delete_domain(
            session, "foo.com", DropThisHostIdiom(), day=5
        )
        assert outcome.deleted
        assert outcome.renames == []
        assert set(outcome.deleted_hosts) == {"ns1.foo.com", "ns2.foo.com"}

    def test_missing_domain_fails_cleanly(self, registry, machinery):
        session = registry.session("regA")
        outcome = machinery.delete_domain(
            session, "ghost.com", DropThisHostIdiom(), day=5
        )
        assert not outcome.deleted
        assert outcome.errors


class TestRenameThenDelete:
    def test_linked_host_renamed(self, registry, machinery):
        session = build_hoster(registry)
        outcome = machinery.delete_domain(
            session, "foo.com", DropThisHostIdiom(), day=5
        )
        assert outcome.deleted
        assert len(outcome.renames) == 1
        rename = outcome.renames[0]
        assert rename.old_name == "ns2.foo.com"
        assert rename.new_name.startswith("dropthishost-")
        assert rename.linked_domains == ("bar.com",)

    def test_client_delegation_rewritten(self, registry, machinery):
        session = build_hoster(registry)
        outcome = machinery.delete_domain(
            session, "foo.com", DropThisHostIdiom(), day=5
        )
        new_name = outcome.renames[0].new_name
        assert registry.repository.domain("bar.com").nameservers == [new_name]

    def test_own_delegation_does_not_cause_rename(self, registry, machinery):
        """ns1 is only linked by foo.com itself, so it is deleted."""
        session = build_hoster(registry)
        outcome = machinery.delete_domain(
            session, "foo.com", DropThisHostIdiom(), day=5
        )
        assert "ns1.foo.com" in outcome.deleted_hosts
        assert all(r.old_name != "ns1.foo.com" for r in outcome.renames)

    def test_multiple_clients_one_rename(self, registry, machinery):
        session = build_hoster(registry, clients=("bar.com", "baz.com", "qux.com"))
        outcome = machinery.delete_domain(
            session, "foo.com", DropThisHostIdiom(), day=5
        )
        assert len(outcome.renames) == 1
        assert set(outcome.renames[0].linked_domains) == {
            "bar.com", "baz.com", "qux.com"
        }

    def test_rename_collision_retries(self, registry, machinery):
        """A host-object collision on the first attempt must be retried."""
        session = build_hoster(registry)
        # Pre-create the exact name attempt 0 would produce.
        predicted = Enom123BizIdiom().rename("ns2.foo.com", random.Random(0))
        session.host_create(predicted, day=2)
        outcome = machinery.delete_domain(
            session, "foo.com", Enom123BizIdiom(), day=5
        )
        assert outcome.deleted
        assert outcome.renames[0].attempts > 1
        assert outcome.renames[0].new_name != predicted

    def test_internal_sink_rename_clears_glue(self, registry, machinery):
        session = build_hoster(registry)
        session.domain_create("sinkhole.com", day=0)
        idiom = SinkDomainIdiom("sinkhole.com")
        outcome = machinery.delete_domain(session, "foo.com", idiom, day=5)
        assert outcome.deleted
        new_name = outcome.renames[0].new_name
        host = registry.repository.host(new_name)
        assert host.addresses == set()

    def test_sink_rename_without_registration_fails(self, registry, machinery):
        """An internal sink target needs the sink domain to exist."""
        session = build_hoster(registry)
        idiom = SinkDomainIdiom("neverregistered.com")
        outcome = machinery.delete_domain(session, "foo.com", idiom, day=5)
        assert not outcome.deleted
        assert outcome.errors


class TestEnsureSinkDomains:
    def test_registers_in_home_registry(self, registry):
        idiom = SinkDomainIdiom("sinkhole.com")
        registered = ensure_sink_domains("regA", idiom, [registry], day=3)
        assert registered == ["sinkhole.com"]
        assert registry.repository.domain_exists("sinkhole.com")

    def test_idempotent(self, registry):
        idiom = SinkDomainIdiom("sinkhole.com")
        ensure_sink_domains("regA", idiom, [registry], day=3)
        assert ensure_sink_domains("regA", idiom, [registry], day=4) == []

    def test_sink_registered_without_delegation(self, registry):
        """Sinks carry no NS so sacrificial names stay lame (§3.1)."""
        idiom = SinkDomainIdiom("sinkhole.com")
        ensure_sink_domains("regA", idiom, [registry], day=3)
        assert registry.repository.domain("sinkhole.com").nameservers == []
        assert "sinkhole.com" not in registry.publish_zone("com")

    def test_unoperated_tld_skipped(self, registry):
        idiom = SinkDomainIdiom("notaplaceto.be")
        assert ensure_sink_domains("regA", idiom, [registry], day=3) == []

    def test_random_idiom_needs_no_sink(self, registry):
        assert ensure_sink_domains(
            "regA", DropThisHostIdiom(), [registry], day=3
        ) == []
