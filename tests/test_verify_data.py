"""verify-data: every recorded digest is recomputed, every lie reported."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.store.atomic import verify_checked_json, write_checked_json
from repro.store.verify import (
    CHECKSUM_MISMATCH,
    CORRUPT,
    HASH_MISMATCH,
    INCONSISTENT,
    MISSING,
    ORPHANED,
    QUARANTINED,
    issues_as_json,
    render_issues,
    verify_artifact_dir,
    verify_dataset,
    verify_run_dir,
)


def kinds(issues):
    return [issue.kind for issue in issues]


@pytest.fixture(scope="module")
def dataset(tmp_path_factory, tiny_bundle):
    from repro.store.dataset import write_dataset

    path = tmp_path_factory.mktemp("verify-ds") / "dataset.sqlite"
    write_dataset(
        tiny_bundle.world.zonedb, path, scenario_digest="cd" * 32
    )
    return path


@pytest.fixture
def dataset_copy(dataset, tmp_path):
    from repro.store.dataset import manifest_path

    copy = tmp_path / "dataset.sqlite"
    shutil.copy(dataset, copy)
    shutil.copy(manifest_path(dataset), manifest_path(copy))
    return copy


class TestVerifyDataset:
    def test_clean_dataset_verifies(self, dataset_copy):
        assert verify_dataset(dataset_copy) == []

    def test_missing_dataset(self, tmp_path):
        assert kinds(verify_dataset(tmp_path / "absent.sqlite")) == [MISSING]

    def test_missing_manifest(self, dataset_copy):
        from repro.store.dataset import manifest_path

        manifest_path(dataset_copy).unlink()
        assert MISSING in kinds(verify_dataset(dataset_copy))

    def test_tampered_manifest(self, dataset_copy):
        from repro.store.dataset import manifest_path

        sidecar = manifest_path(dataset_copy)
        sidecar.write_text(sidecar.read_text().replace('"domains"', '"d0main"'))
        assert CHECKSUM_MISMATCH in kinds(verify_dataset(dataset_copy))

    def test_modified_dataset_bytes(self, dataset_copy):
        with open(dataset_copy, "ab") as handle:
            handle.write(b"\x00" * 16)
        assert HASH_MISMATCH in kinds(verify_dataset(dataset_copy))

    def test_manifest_count_disagreement(self, dataset_copy):
        from repro.store.dataset import manifest_path

        sidecar = manifest_path(dataset_copy)
        body = verify_checked_json(sidecar)
        body["domains"] = body["domains"] + 1
        write_checked_json(sidecar, body)
        assert kinds(verify_dataset(dataset_copy)) == [INCONSISTENT]

    def test_quarantine_leftovers_reported(self, dataset_copy, tmp_path):
        (tmp_path / "dataset.sqlite.manifest.json.corrupt").write_text("x")
        assert QUARANTINED in kinds(verify_dataset(dataset_copy))


class TestVerifyArtifactDir:
    def _cache(self, root):
        from repro.store.artifacts import ArtifactCache, ArtifactKey

        cache = ArtifactCache(root=root)
        key = ArtifactKey.build("verify", "ee" * 32, {"n": 1})
        cache.put(key, {"value": 7})
        return key

    def test_clean_cache_verifies(self, tmp_path):
        self._cache(tmp_path)
        assert verify_artifact_dir(tmp_path) == []

    def test_missing_directory(self, tmp_path):
        assert kinds(verify_artifact_dir(tmp_path / "absent")) == [MISSING]

    def test_orphaned_pickle(self, tmp_path):
        self._cache(tmp_path)
        (tmp_path / "stray.pkl").write_bytes(b"data")
        assert ORPHANED in kinds(verify_artifact_dir(tmp_path))

    def test_manifest_without_artifact(self, tmp_path):
        key = self._cache(tmp_path)
        (tmp_path / f"{key.basename}.pkl").unlink()
        assert ORPHANED in kinds(verify_artifact_dir(tmp_path))

    def test_corrupted_artifact_bytes(self, tmp_path):
        key = self._cache(tmp_path)
        artifact = tmp_path / f"{key.basename}.pkl"
        artifact.write_bytes(artifact.read_bytes()[:-1] + b"\x00")
        assert HASH_MISMATCH in kinds(verify_artifact_dir(tmp_path))

    def test_tampered_manifest(self, tmp_path):
        key = self._cache(tmp_path)
        sidecar = tmp_path / f"{key.basename}.json"
        sidecar.write_text(sidecar.read_text().replace("riskybiz", "r1skybiz"))
        assert CHECKSUM_MISMATCH in kinds(verify_artifact_dir(tmp_path))


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory, tiny_bundle):
    from repro.runner.execution import run_supervised_detection

    directory = tmp_path_factory.mktemp("verify-run") / "run"
    run_supervised_detection(
        tiny_bundle.world.zonedb,
        tiny_bundle.world.whois,
        run_dir=directory,
        shards=2,
    )
    return directory


@pytest.fixture
def run_copy(run_dir, tmp_path):
    copy = tmp_path / "run"
    shutil.copytree(run_dir, copy)
    return copy


class TestVerifyRunDir:
    def test_clean_run_verifies(self, run_copy):
        assert verify_run_dir(run_copy) == []

    def test_missing_journal(self, tmp_path):
        assert kinds(verify_run_dir(tmp_path)) == [MISSING]

    def test_corrupt_journal(self, run_copy):
        journal = run_copy / "journal.jsonl"
        lines = journal.read_text().splitlines()
        lines[1] = lines[1].replace('"', "'", 2)
        journal.write_text("\n".join(lines) + "\n")
        assert kinds(verify_run_dir(run_copy)) == [CORRUPT]

    def test_corrupted_checkpoint(self, run_copy):
        checkpoint = sorted((run_copy / "checkpoints").glob("*.pkl"))[0]
        checkpoint.write_bytes(checkpoint.read_bytes()[:-1] + b"\x00")
        assert HASH_MISMATCH in kinds(verify_run_dir(run_copy))

    def test_missing_checkpoint(self, run_copy):
        for checkpoint in (run_copy / "checkpoints").glob("*.pkl"):
            checkpoint.unlink()
        assert MISSING in kinds(verify_run_dir(run_copy))

    def test_corrupted_result(self, run_copy):
        result = run_copy / "result.pkl"
        result.write_bytes(result.read_bytes()[:-1] + b"\x00")
        assert HASH_MISMATCH in kinds(verify_run_dir(run_copy))

    def test_result_manifest_digest_disagreement(self, run_copy):
        manifest_file = run_copy / "result.json"
        body = verify_checked_json(manifest_file)
        body["result_digest"] = "0" * 64
        write_checked_json(manifest_file, body)
        assert INCONSISTENT in kinds(verify_run_dir(run_copy))


class TestRendering:
    def test_all_clear_message(self):
        assert "all checks passed" in render_issues([])

    def test_json_round_trips(self, run_copy):
        (run_copy / "result.pkl").write_bytes(b"junk")
        issues = verify_run_dir(run_copy)
        document = json.loads(issues_as_json(issues))
        assert document
        assert {"kind", "path", "detail"} <= set(document[0])


class TestVerifyDataCli:
    def test_no_targets_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["verify-data"]) == 2
        assert "nothing to verify" in capsys.readouterr().err

    def test_clean_targets_exit_zero(self, dataset_copy, run_copy, capsys):
        from repro.cli import main

        code = main([
            "verify-data",
            "--dataset", str(dataset_copy),
            "--run-dir", str(run_copy),
        ])
        assert code == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_corruption_exits_one(self, dataset_copy, capsys):
        from repro.cli import main
        from repro.store.dataset import manifest_path

        sidecar = manifest_path(dataset_copy)
        sidecar.write_text(sidecar.read_text().replace('"domains"', '"dom"'))
        assert main(["verify-data", "--dataset", str(dataset_copy)]) == 1
        assert CHECKSUM_MISMATCH in capsys.readouterr().out

    def test_json_format(self, dataset_copy, capsys):
        from repro.cli import main

        with open(dataset_copy, "ab") as handle:
            handle.write(b"\x00")
        code = main([
            "verify-data", "--dataset", str(dataset_copy), "--format", "json",
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert any(issue["kind"] == HASH_MISMATCH for issue in document)
