"""Tests for the §6.1 controlled-experiment reproduction."""

import pytest

from repro.dnscore.names import Name
from repro.experiment.controlled import (
    ControlledExperiment,
    OUTSIDE_IP,
    PROOF_ADDRESS,
    run_controlled_experiment,
)


@pytest.fixture(scope="module")
def experiment_report(experiment_bundle):
    # The experiment mutates registry state (defensive registration), so
    # it runs on its own private world, never the shared bundles.
    return run_controlled_experiment(
        experiment_bundle.world, experiment_bundle.study
    )


class TestTargetSelection:
    def test_pick_prefers_restricted_reach(self, experiment_report):
        # The chosen group had .edu/.gov victims if any group did.
        if experiment_report.restricted_tld_domains:
            assert any(
                Name(d).tld in ("edu", "gov")
                for d in experiment_report.restricted_tld_domains
            )

    def test_target_is_hijackable_group(self, experiment_bundle, experiment_report):
        group = experiment_bundle.study.groups[experiment_report.sacrificial_domain]
        assert group.hijackable


class TestProtocol:
    def test_victims_lame_before_registration(self, experiment_report):
        assert experiment_report.pre_registration_status in (
            "lame", "unresolvable-ns"
        )

    def test_queries_observed(self, experiment_report):
        assert experiment_report.queries_observed >= len(
            experiment_report.delegated_domains
        )

    def test_cross_tld_queries_reach_us(self, experiment_report):
        """The shared-EPP-repository surprise of §6.1."""
        if experiment_report.restricted_tld_domains:
            assert experiment_report.cross_tld_effect_observed

    def test_scoped_hijack_works_inside(self, experiment_report):
        assert experiment_report.scoped_answer == [PROOF_ADDRESS]

    def test_no_answer_outside_scope(self, experiment_report):
        assert experiment_report.outside_answer_status != "answered"
        assert experiment_report.hijack_demonstrated

    def test_ethics_logs_purged(self, experiment_report):
        assert experiment_report.logs_purged > 0


class TestErrorHandling:
    def test_explicit_unknown_target_rejected(self, experiment_bundle):
        experiment = ControlledExperiment(
            experiment_bundle.world, experiment_bundle.study
        )
        with pytest.raises(KeyError):
            experiment.run("never-a-sacrificial-name.biz")
