"""Run journal: durable appends, torn-tail recovery, corruption refusal."""

from __future__ import annotations

import json

import pytest

from repro.faults.process import ChaosKill
from repro.runner.journal import (
    JOURNAL_FORMAT,
    JournalCorruption,
    RunJournal,
)


@pytest.fixture
def journal(tmp_path):
    return RunJournal.create(tmp_path / "journal.jsonl", "run-test")


class TestCreateAndAppend:
    def test_create_writes_run_start(self, journal):
        assert journal.records[0].type == "run-start"
        assert journal.records[0].payload["format"] == JOURNAL_FORMAT

    def test_create_refuses_existing_file(self, journal, tmp_path):
        with pytest.raises(FileExistsError):
            RunJournal.create(tmp_path / "journal.jsonl", "run-other")

    def test_appends_are_sequenced(self, journal):
        journal.append("shard-start", shard=0)
        journal.append("shard-complete", shard=0)
        assert [r.seq for r in journal.records] == [0, 1, 2]

    def test_every_line_carries_verifying_checksum(self, journal, tmp_path):
        journal.append("shard-start", shard=0)
        for line in (tmp_path / "journal.jsonl").read_text().splitlines():
            document = json.loads(line)
            assert "checksum" in document


class TestReplay:
    def test_open_round_trips(self, journal, tmp_path):
        journal.append("shard-start", shard=1)
        journal.append("shard-complete", shard=1, checkpoint_sha256="aa")
        reopened = RunJournal.open(tmp_path / "journal.jsonl")
        assert reopened.run_id == "run-test"
        assert [r.type for r in reopened.records] == [
            "run-start", "shard-start", "shard-complete",
        ]

    def test_completed_shards_and_stages(self, journal):
        journal.append("stage-complete", shard=0, stage="candidates")
        journal.append("stage-complete", shard=0, stage="test-filter")
        journal.append("stage-complete", shard=1, stage="candidates")
        journal.append("shard-complete", shard=0, checkpoint_sha256="aa")
        assert list(journal.completed_shards()) == [0]
        assert journal.completed_stages(0) == ["candidates", "test-filter"]
        assert journal.completed_stages(1) == ["candidates"]

    def test_run_complete_property(self, journal):
        assert journal.run_complete is None
        journal.append("run-complete", result_digest="dd")
        assert journal.run_complete is not None


class TestTornTailRecovery:
    def test_truncated_last_line_dropped(self, journal, tmp_path):
        journal.append("shard-start", shard=0)
        journal.append("shard-complete", shard=0)
        path = tmp_path / "journal.jsonl"
        data = path.read_bytes()
        path.write_bytes(data[:-20])  # tear the final record
        reopened = RunJournal.open(path)
        assert [r.type for r in reopened.records] == ["run-start", "shard-start"]

    def test_recovery_truncates_the_file(self, journal, tmp_path):
        journal.append("shard-start", shard=0)
        path = tmp_path / "journal.jsonl"
        path.write_bytes(path.read_bytes() + b'{"torn": tr')
        RunJournal.open(path)
        # After recovery the file replays with no tail to drop.
        reopened = RunJournal.open(path)
        assert len(reopened.records) == 2

    def test_append_continues_after_recovery(self, journal, tmp_path):
        journal.append("shard-start", shard=0)
        path = tmp_path / "journal.jsonl"
        path.write_bytes(path.read_bytes() + b"garbage")
        reopened = RunJournal.open(path)
        reopened.append("shard-complete", shard=0)
        final = RunJournal.open(path)
        assert [r.seq for r in final.records] == [0, 1, 2]


class TestCorruptionRefusal:
    def test_damaged_middle_record_raises(self, journal, tmp_path):
        journal.append("shard-start", shard=0)
        journal.append("shard-complete", shard=0)
        path = tmp_path / "journal.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"shard-start"', '"shard-sneaky"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruption):
            RunJournal.open(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        with pytest.raises(JournalCorruption):
            RunJournal.open(path)

    def test_first_record_must_be_run_start(self, tmp_path):
        path = tmp_path / "other.jsonl"
        journal = RunJournal(path, "run-x")
        journal.append("shard-start", shard=0)
        journal.append("shard-complete", shard=0)
        with pytest.raises(JournalCorruption):
            RunJournal.open(path)

    def test_reordered_records_raise(self, journal, tmp_path):
        journal.append("shard-start", shard=0)
        journal.append("shard-complete", shard=0)
        path = tmp_path / "journal.jsonl"
        lines = path.read_text().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruption):
            RunJournal.open(path)


class TestTornWriter:
    def test_torn_writer_cuts_record_and_kills(self, journal, tmp_path):
        journal.torn_writer = lambda data: len(data) // 2
        with pytest.raises(ChaosKill):
            journal.append("shard-start", shard=0)
        # The fragment is on disk; recovery drops it and keeps the rest.
        reopened = RunJournal.open(tmp_path / "journal.jsonl")
        assert [r.type for r in reopened.records] == ["run-start"]

    def test_torn_writer_pass_through(self, journal, tmp_path):
        journal.torn_writer = lambda data: None
        journal.append("shard-start", shard=0)
        reopened = RunJournal.open(tmp_path / "journal.jsonl")
        assert len(reopened.records) == 2
