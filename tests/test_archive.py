"""Tests for the on-disk zone archive (text round-trips)."""

import pytest

from repro.zonedb.archive import (
    archive_size_bytes,
    iter_archive,
    read_archive,
    snapshot_path,
    write_archive,
)
from repro.zonedb.snapshot import ZoneSnapshot
from repro.dnscore.zone import Zone


def make_snapshot(day: int, tld: str = "com") -> ZoneSnapshot:
    return ZoneSnapshot(
        day=day,
        tld=tld,
        delegations={
            f"alpha.{tld}": frozenset({"ns1.x.net"}),
            f"beta.{tld}": frozenset({"ns1.x.net", "ns2.x.net"}),
        },
        glue={f"ns1.alpha.{tld}": frozenset({"192.0.2.5"})},
    )


class TestPaths:
    def test_snapshot_path_layout(self, tmp_path):
        path = snapshot_path(tmp_path, "com", 120)
        assert path == tmp_path / "com" / "0000120.zone"


class TestWriteRead:
    def test_write_creates_files(self, tmp_path):
        paths = write_archive(tmp_path, [make_snapshot(0), make_snapshot(1)])
        assert all(p.exists() for p in paths)

    def test_iter_in_day_order(self, tmp_path):
        write_archive(tmp_path, [make_snapshot(5), make_snapshot(1), make_snapshot(3)])
        days = [snap.day for snap in iter_archive(tmp_path)]
        assert days == [1, 3, 5]

    def test_round_trip_content(self, tmp_path):
        original = make_snapshot(2)
        write_archive(tmp_path, [original])
        restored = next(iter_archive(tmp_path))
        assert restored.delegations == original.delegations
        assert restored.glue == original.glue

    def test_read_archive_builds_database(self, tmp_path):
        write_archive(tmp_path, [make_snapshot(0), make_snapshot(1)])
        db = read_archive(tmp_path)
        assert db.nameservers_of("alpha.com", 0) == {"ns1.x.net"}
        assert db.glue_present("ns1.alpha.com", 1)

    def test_missing_archive_is_empty(self, tmp_path):
        assert list(iter_archive(tmp_path / "nothing")) == []

    def test_archive_size(self, tmp_path):
        write_archive(tmp_path, [make_snapshot(0)])
        assert archive_size_bytes(tmp_path) > 0

    def test_multi_tld_interleaved(self, tmp_path):
        write_archive(
            tmp_path,
            [make_snapshot(0, "com"), make_snapshot(0, "biz"), make_snapshot(1, "com")],
        )
        db = read_archive(tmp_path)
        assert db.covers("x.com") and db.covers("x.biz")
        assert db.nameservers_of("alpha.biz", 0) == {"ns1.x.net"}


class TestSnapshotConversion:
    def test_from_zone(self):
        zone = Zone("com", serial=3)
        zone.set_delegation("a.com", ["ns1.x.net"])
        zone.set_glue("ns1.a.com", ["192.0.2.1"])
        snap = ZoneSnapshot.from_zone(4, zone)
        assert snap.day == 4
        assert snap.delegations["a.com"] == frozenset({"ns1.x.net"})
        assert snap.glue["ns1.a.com"] == frozenset({"192.0.2.1"})

    def test_to_zone_round_trip(self):
        snap = make_snapshot(9)
        zone = snap.to_zone()
        assert ZoneSnapshot.from_zone(9, zone).delegations == snap.delegations

    def test_counts(self):
        snap = make_snapshot(0)
        assert snap.domain_count() == 2
        assert snap.nameserver_set() == frozenset({"ns1.x.net", "ns2.x.net"})


class TestWorldArchiveRoundTrip:
    def test_world_zone_state_survives_archive(self, tiny_bundle, tmp_path):
        """Registry state → text archive → database reproduces the zone."""
        registry = tiny_bundle.world.roster.registry_for("x.com")
        zone = registry.publish_zone("com")
        day = tiny_bundle.world.config.end_day
        snapshot = ZoneSnapshot.from_zone(day, zone)
        write_archive(tmp_path, [snapshot])
        db = read_archive(tmp_path)
        for delegation in zone.delegations():
            assert db.nameservers_of(delegation.domain, day) == delegation.nameservers
