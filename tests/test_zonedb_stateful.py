"""Stateful property testing of the zone database.

Hypothesis drives random day-by-day delegation changes through (a) the
change-level API and (b) a shadow model (plain dicts of daily states),
checking after every step that interval queries agree with the model —
the property DZDB-style databases must satisfy: *any* reconstruction at
day D equals the state that was ingested for day D.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.zonedb.database import ZoneDatabase

DOMAINS = ("a.com", "b.com", "c.com")
NAMESERVERS = ("ns1.x.net", "ns2.x.net", "ns3.y.org")


class ZoneDbMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.db = ZoneDatabase(["com"])
        self.day = 0
        # The shadow model: current state plus every day's snapshot.
        self.current: dict[str, frozenset[str]] = {}
        self.snapshots: dict[int, dict[str, frozenset[str]]] = {}
        self._record_day()

    def _record_day(self) -> None:
        self.snapshots[self.day] = dict(self.current)

    @rule()
    def advance_day(self):
        self.day += 1
        self.db.advance(self.day)
        self._record_day()

    @rule(
        domain=st.sampled_from(DOMAINS),
        ns_set=st.sets(st.sampled_from(NAMESERVERS), min_size=1, max_size=3),
    )
    def set_delegation(self, domain, ns_set):
        self.db.set_delegation(self.day, domain, ns_set)
        self.current[domain] = frozenset(ns_set)
        self._record_day()

    @rule(domain=st.sampled_from(DOMAINS))
    def remove_delegation(self, domain):
        self.db.remove_delegation(self.day, domain)
        self.current.pop(domain, None)
        self._record_day()

    @invariant()
    def every_past_day_reconstructs(self):
        for day, state in self.snapshots.items():
            if day == self.day:
                continue  # same-day changes are squashed at daily grain
            for domain in DOMAINS:
                expected = state.get(domain, frozenset())
                assert self.db.nameservers_of(domain, day) == expected, (
                    f"day {day} domain {domain}"
                )

    @invariant()
    def current_state_matches(self):
        for domain in DOMAINS:
            expected = self.current.get(domain, frozenset())
            assert self.db.nameservers_of(domain, self.day) == expected

    @invariant()
    def ns_index_is_inverse_of_domain_index(self):
        for ns in NAMESERVERS:
            via_ns = self.db.domains_of_ns(ns, self.day)
            via_domains = {
                domain for domain in DOMAINS
                if ns in self.db.nameservers_of(domain, self.day)
            }
            assert via_ns == via_domains

    @invariant()
    def presence_matches_delegation(self):
        for domain in DOMAINS:
            delegated = bool(self.db.nameservers_of(domain, self.day))
            assert self.db.domain_present(domain, self.day) == delegated


ZoneDbMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=25, deadline=None
)
TestZoneDbMachine = ZoneDbMachine.TestCase
