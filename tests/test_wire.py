"""Tests for RFC 1035 wire-format encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.errors import DnsError
from repro.dnscore.records import ResourceRecord, RRType, a_record, ns_record, soa_record
from repro.dnscore.wire import (
    Message,
    Question,
    Rcode,
    decode_message,
    encode_message,
)


def round_trip(message: Message) -> Message:
    return decode_message(encode_message(message))


class TestHeader:
    def test_query_flags(self):
        query = Message.query("example.com", RRType.A, message_id=4660)
        decoded = round_trip(query)
        assert decoded.message_id == 4660
        assert not decoded.is_response
        assert decoded.recursion_desired
        assert decoded.rcode is Rcode.NOERROR

    def test_response_flags(self):
        query = Message.query("example.com", RRType.A, message_id=7)
        response = query.respond(
            [a_record("example.com", "192.0.2.1")], rcode=Rcode.NOERROR
        )
        decoded = round_trip(response)
        assert decoded.is_response
        assert decoded.authoritative
        assert decoded.message_id == 7

    def test_rcode_preserved(self):
        query = Message.query("gone.com", RRType.A)
        decoded = round_trip(query.respond([], rcode=Rcode.NXDOMAIN))
        assert decoded.rcode is Rcode.NXDOMAIN

    def test_truncated_flag(self):
        message = Message.query("x.com", RRType.A)
        message.truncated = True
        assert round_trip(message).truncated

    def test_recursion_available(self):
        message = Message.query("x.com", RRType.A)
        message.is_response = True
        message.recursion_available = True
        assert round_trip(message).recursion_available


class TestQuestions:
    def test_question_round_trip(self):
        decoded = round_trip(Message.query("WWW.Example.COM", RRType.NS))
        assert decoded.questions == [Question("www.example.com", RRType.NS)]

    def test_multiple_questions(self):
        message = Message(
            questions=[Question("a.com", RRType.A), Question("b.org", RRType.NS)]
        )
        assert len(round_trip(message).questions) == 2


class TestRecords:
    @pytest.mark.parametrize(
        "record",
        [
            a_record("ns1.example.com", "192.0.2.53", ttl=300),
            ns_record("example.com", "ns1.example.com"),
            ResourceRecord("h.example.com", RRType.AAAA, "2001:db8::1"),
            ResourceRecord("alias.example.com", RRType.CNAME, "target.example.net"),
            soa_record("com", "a.nic.com", "hostmaster.nic.com", 42),
            ResourceRecord("txt.example.com", RRType.TXT, "hello world"),
        ],
    )
    def test_record_round_trip(self, record):
        message = Message(is_response=True, answers=[record])
        decoded = round_trip(message)
        assert decoded.answers == [record]

    def test_all_sections(self):
        message = Message(
            is_response=True,
            answers=[a_record("a.com", "192.0.2.1")],
            authorities=[ns_record("a.com", "ns1.b.net")],
            additionals=[a_record("ns1.b.net", "192.0.2.2")],
        )
        decoded = round_trip(message)
        assert len(decoded.answers) == 1
        assert len(decoded.authorities) == 1
        assert len(decoded.additionals) == 1

    def test_long_txt_chunked(self):
        record = ResourceRecord("t.example.com", RRType.TXT, "x" * 700)
        decoded = round_trip(Message(answers=[record]))
        assert decoded.answers[0].rdata == "x" * 700


class TestCompression:
    def test_compression_shrinks_repeated_names(self):
        answers = [
            ns_record("example.com", f"ns{i}.example.com") for i in range(4)
        ]
        message = Message(is_response=True, answers=answers)
        wire = encode_message(message)
        uncompressed_estimate = sum(
            len(r.name) + len(r.rdata) + 12 for r in answers
        )
        assert len(wire) < uncompressed_estimate
        assert decode_message(wire).answers == answers

    def test_pointer_loop_rejected(self):
        # Hand-craft a message whose name is a pointer to itself.
        header = (0).to_bytes(2, "big") * 6
        evil = bytearray(header)
        evil[4:6] = (1).to_bytes(2, "big")  # qdcount = 1
        evil += b"\xc0\x0c"                  # name: pointer to itself
        evil += (1).to_bytes(2, "big") + (1).to_bytes(2, "big")
        with pytest.raises(DnsError):
            decode_message(bytes(evil))

    def test_truncated_message_rejected(self):
        wire = encode_message(Message.query("example.com", RRType.A))
        with pytest.raises(DnsError):
            decode_message(wire[:-3])

    def test_garbage_rejected(self):
        with pytest.raises(DnsError):
            decode_message(b"\x00\x01")


label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12)
name_st = st.lists(label, min_size=2, max_size=4).map(".".join)


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=65535),
        name_st,
        st.sampled_from([RRType.A, RRType.NS, RRType.AAAA, RRType.TXT]),
    )
    def test_query_round_trip(self, message_id, qname, qtype):
        message = Message.query(qname, qtype, message_id=message_id)
        assert round_trip(message) == message

    @given(st.lists(st.tuples(name_st, name_st), min_size=1, max_size=8))
    def test_ns_response_round_trip(self, pairs):
        answers = [ns_record(owner, target) for owner, target in pairs]
        message = Message(is_response=True, answers=answers)
        assert round_trip(message).answers == answers

    @given(
        name_st,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_a_response_round_trip(self, owner, octet_a, octet_b):
        record = a_record(owner, f"192.{octet_a}.{octet_b}.7")
        message = Message(is_response=True, answers=[record])
        assert round_trip(message).answers == [record]
