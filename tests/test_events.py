"""Tests for the event queue and ground-truth log containers."""

import pytest

from repro.ecosystem.events import (
    Event,
    EventLog,
    EventQueue,
    HijackRecord,
    RenameRecord,
)


class TestEventQueue:
    def test_day_ordering(self):
        queue = EventQueue()
        queue.push_new(5, "b")
        queue.push_new(1, "a")
        queue.push_new(9, "c")
        assert [queue.pop().day for _ in range(3)] == [1, 5, 9]

    def test_fifo_within_a_day(self):
        queue = EventQueue()
        for index in range(5):
            queue.push_new(7, f"k{index}")
        assert [queue.pop().kind for _ in range(5)] == [
            "k0", "k1", "k2", "k3", "k4"
        ]

    def test_peek_day(self):
        queue = EventQueue()
        assert queue.peek_day() is None
        queue.push_new(3, "x")
        assert queue.peek_day() == 3
        assert len(queue) == 1

    def test_payload_carried(self):
        queue = EventQueue()
        queue.push_new(1, "x", value=42)
        assert queue.pop().payload == {"value": 42}

    def test_push_event_object(self):
        queue = EventQueue()
        queue.push(Event(day=2, kind="y", payload={}))
        assert queue.pop().kind == "y"

    def test_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push_new(1, "x")
        assert queue


def rename(day, new, *, hijackable=True, accidental=False):
    return RenameRecord(
        day=day, old_name="ns1.old.com", new_name=new,
        registrar="r", repository="sim-verisign",
        idiom_id="DROPTHISHOST", hijackable=hijackable,
        linked_domains=("v.com",), accidental=accidental,
    )


class TestEventLog:
    def test_renames_by_new_name(self):
        log = EventLog(renames=[rename(1, "a.biz"), rename(2, "b.biz")])
        index = log.renames_by_new_name()
        assert index["a.biz"].day == 1

    def test_hijacks_by_domain(self):
        log = EventLog(hijacks=[
            HijackRecord(5, "a.biz", "actor", ("ns1.x.nl",), 3),
        ])
        assert log.hijacks_by_domain()["a.biz"].hijacker == "actor"

    def test_renames_in_window(self):
        log = EventLog(renames=[rename(1, "a.biz"), rename(5, "b.biz"),
                                rename(9, "c.biz")])
        window = log.renames_in(2, 9)
        assert [r.new_name for r in window] == ["b.biz"]

    def test_summary_counts(self):
        log = EventLog(renames=[rename(1, "a.biz", hijackable=False),
                                rename(2, "b.biz")])
        summary = log.summary()
        assert summary["renames"] == 2
        assert summary["hijackable_renames"] == 1


class TestWorldGroupsIntegrity:
    def test_group_members_are_logged_renames(self, tiny_bundle):
        world = tiny_bundle.world
        rename_names = {r.new_name for r in world.log.renames}
        for group in world.groups.values():
            assert group.ns_names <= rename_names

    def test_groups_keyed_by_registered_domain(self, tiny_bundle):
        from repro.dnscore.psl import default_psl
        psl = default_psl()
        for registered, group in tiny_bundle.world.groups.items():
            for ns in group.ns_names:
                assert psl.registered_domain(ns) == registered
