"""Unit tests for the hijacker actor's decision policy."""

import datetime as dt
import random

import pytest

from repro import simtime
from repro.ecosystem.config import HijackerSpec
from repro.ecosystem.hijacker import HijackerActor


def make_actor(seed=1, **overrides):
    spec = HijackerSpec(
        ident="test-actor",
        ns_domain="actor.example",
        active_from=dt.date(2012, 1, 1),
        active_until=dt.date(2019, 1, 1),
        min_value=overrides.pop("min_value", 5),
        interest=overrides.pop("interest", 0.5),
        speed=overrides.pop("speed", 1.0),
        renew_probs=overrides.pop("renew_probs", (0.5, 0.3)),
        monthly_capacity=overrides.pop("monthly_capacity", 3),
    )
    return HijackerActor(spec, random.Random(seed))


class TestActivityWindow:
    def test_inactive_before_start(self):
        actor = make_actor()
        day = simtime.to_day(dt.date(2011, 6, 1))
        assert not actor.is_active(day)
        assert actor.consider(day, value=100) is None

    def test_active_inside_window(self):
        actor = make_actor()
        assert actor.is_active(simtime.to_day(dt.date(2015, 6, 1)))

    def test_inactive_after_end(self):
        actor = make_actor()
        assert not actor.is_active(simtime.to_day(dt.date(2020, 1, 1)))


class TestInterest:
    def test_below_threshold_never_considered(self):
        actor = make_actor(min_value=10)
        day = simtime.to_day(dt.date(2015, 1, 1))
        assert all(actor.consider(day, value=9) is None for _ in range(50))

    def test_high_value_usually_considered(self):
        actor = make_actor(min_value=5, interest=0.9)
        day = simtime.to_day(dt.date(2015, 1, 1))
        taken = sum(actor.consider(day, value=500) is not None for _ in range(200))
        assert taken > 100

    def test_marginal_value_rarely_considered(self):
        high = make_actor(seed=3, min_value=5, interest=0.9)
        low = make_actor(seed=3, min_value=5, interest=0.9)
        day = simtime.to_day(dt.date(2015, 1, 1))
        marginal = sum(low.consider(day, value=5) is not None for _ in range(200))
        juicy = sum(high.consider(day, value=500) is not None for _ in range(200))
        assert juicy > marginal


class TestDelay:
    def test_delay_bounds(self):
        actor = make_actor()
        for value in (1, 10, 100, 1000):
            for _ in range(50):
                delay = actor.registration_delay(value)
                assert 1 <= delay <= 500

    def test_higher_value_faster_on_average(self):
        actor = make_actor(seed=7)
        slow = sum(actor.registration_delay(2) for _ in range(300)) / 300
        fast = sum(actor.registration_delay(300) for _ in range(300)) / 300
        assert fast < slow

    def test_speed_scales_delay(self):
        sluggish = make_actor(seed=9, speed=0.5)
        quick = make_actor(seed=9, speed=4.0)
        avg_sluggish = sum(sluggish.registration_delay(20) for _ in range(300)) / 300
        avg_quick = sum(quick.registration_delay(20) for _ in range(300)) / 300
        assert avg_quick < avg_sluggish


class TestCapacity:
    def test_capacity_consumed_by_registrations(self):
        actor = make_actor(monthly_capacity=2)
        day = simtime.to_day(dt.date(2015, 1, 5))
        assert actor.has_capacity(day)
        actor.record_registration(day, "a.biz")
        actor.record_registration(day, "b.biz")
        assert not actor.has_capacity(day)

    def test_capacity_resets_next_month(self):
        actor = make_actor(monthly_capacity=1)
        day = simtime.to_day(dt.date(2015, 1, 5))
        actor.record_registration(day, "a.biz")
        assert not actor.has_capacity(day)
        assert actor.has_capacity(day + 31)

    def test_registrations_remembered(self):
        actor = make_actor()
        actor.record_registration(100, "a.biz")
        assert "a.biz" in actor.registered_domains


class TestRenewal:
    def test_dead_asset_rarely_renewed(self):
        actor = make_actor(seed=11)
        renewals = sum(actor.decide_renewal(1, current_value=0) for _ in range(300))
        assert renewals < 45  # ~5% rate

    def test_live_asset_uses_schedule(self):
        actor = make_actor(seed=13, renew_probs=(1.0, 0.0))
        assert actor.decide_renewal(1, current_value=10)
        assert not actor.decide_renewal(2, current_value=10)

    def test_probabilities_clamp_to_last(self):
        actor = make_actor(seed=15, renew_probs=(0.5,))
        # anniversary 5 uses the last entry without raising
        actor.decide_renewal(5, current_value=10)
