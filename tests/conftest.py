"""Shared fixtures: reproduction bundles at several scales.

The world simulation is the expensive part, so bundles are session-scoped
and shared. ``tiny_bundle`` is for fast logic checks, ``small_bundle``
for integration behaviour, ``default_bundle`` for the statistical shape
assertions that need the full-scale world's sample sizes.
"""

from __future__ import annotations

import pytest

from repro.api import ReproBundle, reproduce


@pytest.fixture(scope="session")
def tiny_bundle() -> ReproBundle:
    """A ~1:1000-scale world: fast, enough structure for logic tests."""
    return reproduce(scale=0.1)


@pytest.fixture(scope="session")
def small_bundle() -> ReproBundle:
    """A ~1:400-scale world for integration tests."""
    return reproduce(scale=0.25)


@pytest.fixture(scope="session")
def default_bundle() -> ReproBundle:
    """The canonical full-scale world (shape/calibration assertions)."""
    return reproduce(scale=1.0)


@pytest.fixture(scope="session")
def experiment_bundle() -> ReproBundle:
    """A private world for the controlled experiment.

    The §6.1 protocol *mutates* registry state (defensive registration,
    new host objects), so it must never run against the shared bundles.
    """
    return reproduce(seed=1759, scale=0.25, use_cache=False)
