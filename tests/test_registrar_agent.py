"""Tests for registrar agents and idiom schedules."""

import datetime as dt

import pytest

from repro import simtime
from repro.epp.registry import default_roster
from repro.registrar.idioms import (
    DropThisHostIdiom,
    PleaseDropThisHostIdiom,
    ReservedLabelIdiom,
    SinkDomainIdiom,
)
from repro.registrar.registrar import IdiomSchedule, Registrar


@pytest.fixture()
def roster():
    return default_roster()


@pytest.fixture()
def godaddy(roster):
    schedule = IdiomSchedule()
    schedule.add(-100, PleaseDropThisHostIdiom())
    schedule.add(simtime.to_day(dt.date(2015, 3, 1)), DropThisHostIdiom())
    registrar = Registrar("godaddy", "GoDaddy", seed=1, schedule=schedule)
    registrar.accredit_at(roster.registries)
    return registrar


class TestIdiomSchedule:
    def test_current_picks_latest_effective(self, godaddy):
        early = godaddy.current_idiom(10)
        late = godaddy.current_idiom(simtime.to_day(dt.date(2016, 1, 1)))
        assert early.idiom_id == "PLEASEDROPTHISHOST"
        assert late.idiom_id == "DROPTHISHOST"

    def test_boundary_day_switches(self):
        schedule = IdiomSchedule()
        schedule.add(0, PleaseDropThisHostIdiom())
        schedule.add(100, DropThisHostIdiom())
        assert schedule.current(99).idiom_id == "PLEASEDROPTHISHOST"
        assert schedule.current(100).idiom_id == "DROPTHISHOST"

    def test_no_idiom_raises(self):
        schedule = IdiomSchedule()
        schedule.add(100, DropThisHostIdiom())
        with pytest.raises(LookupError):
            schedule.current(50)

    def test_history_sorted(self):
        schedule = IdiomSchedule()
        schedule.add(100, DropThisHostIdiom())
        schedule.add(0, PleaseDropThisHostIdiom())
        days = [day for day, _ in schedule.history()]
        assert days == [0, 100]


class TestProvisioning:
    def test_register_domain(self, godaddy, roster):
        result = godaddy.register_domain(roster, "customer.com", day=5)
        assert result.ok
        assert roster.registry_for("customer.com").repository.domain_exists(
            "customer.com"
        )

    def test_register_creates_external_hosts(self, godaddy, roster):
        result = godaddy.register_domain(
            roster, "customer.com", day=5, nameservers=["ns1.provider.org"]
        )
        assert result.ok
        repo = roster.registry_for("customer.com").repository
        assert repo.host("ns1.provider.org").external

    def test_internal_hosts_not_autocreated(self, godaddy, roster):
        """Hosts under the target repository need their sponsor to exist."""
        result = godaddy.register_domain(
            roster, "customer.com", day=5, nameservers=["ns1.missing.com"]
        )
        assert not result.ok

    def test_subordinate_hosts_with_glue(self, godaddy, roster):
        godaddy.register_domain(roster, "hoster.com", day=0)
        results = godaddy.create_subordinate_hosts(
            roster, "hoster.com",
            {"ns1.hoster.com": ["192.0.2.1"], "ns2.hoster.com": ["192.0.2.2"]},
            day=0,
        )
        assert all(r.ok for r in results)
        repo = roster.registry_for("hoster.com").repository
        assert repo.host("ns1.hoster.com").addresses == {"192.0.2.1"}

    def test_update_and_renew(self, godaddy, roster):
        godaddy.register_domain(roster, "customer.com", day=0)
        update = godaddy.update_nameservers(
            roster, "customer.com", day=1, add=["ns1.ext.org"]
        )
        assert update.ok
        renew = godaddy.renew_domain(roster, "customer.com", day=2)
        assert renew.ok

    def test_sessions_cached_per_registry(self, godaddy, roster):
        registry = roster.registry_for("a.com")
        assert godaddy.session_for(registry) is godaddy.session_for(registry)


class TestDeleteViaMachinery:
    def test_delete_uses_scheduled_idiom(self, godaddy, roster):
        godaddy.register_domain(roster, "hoster.com", day=0)
        godaddy.create_subordinate_hosts(
            roster, "hoster.com", {"ns1.hoster.com": ["192.0.2.1"]}, day=0
        )
        # Another registrar's client delegates to the host.
        enom = Registrar("enom", "Enom", seed=2)
        enom.accredit_at(roster.registries)
        enom.register_domain(
            roster, "client.com", day=1, nameservers=["ns1.hoster.com"]
        )
        late = simtime.to_day(dt.date(2016, 1, 1))
        outcome = godaddy.delete_domain(roster, "hoster.com", day=late)
        assert outcome.deleted
        assert outcome.renames[0].new_name.startswith("dropthishost-")


class TestIdiomAdoption:
    def test_adopt_idiom_provisions_sink(self, roster):
        registrar = Registrar("enom", "Enom", seed=3)
        registrar.accredit_at(roster.registries)
        registered = registrar.adopt_idiom(
            10, SinkDomainIdiom("delete-registration.com")
        )
        assert registered == ["delete-registration.com"]
        repo = roster.registry_for("delete-registration.com").repository
        assert repo.domain_exists("delete-registration.com")

    def test_reserved_idiom_needs_nothing(self, roster):
        registrar = Registrar("godaddy", "GoDaddy", seed=4)
        registrar.accredit_at(roster.registries)
        assert registrar.adopt_idiom(10, ReservedLabelIdiom()) == []

    def test_provision_sinks_ignores_future_idioms(self, roster):
        registrar = Registrar("enom", "Enom", seed=5)
        registrar.accredit_at(roster.registries)
        registrar.schedule.add(1000, SinkDomainIdiom("future-sink.com"))
        registrar.schedule.add(0, DropThisHostIdiom())
        # Note: provision_sinks in Registrar provisions everything in the
        # schedule; the world's event handler applies the effective-day
        # filter. Here we exercise the world-facing behaviour indirectly
        # by checking the sink is not yet present before the handler runs.
        repo = roster.registry_for("future-sink.com").repository
        assert not repo.domain_exists("future-sink.com")
