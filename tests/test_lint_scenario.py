"""Scenario lint engine: seeded-violation fixtures and export round-trip."""

from __future__ import annotations

import pytest

from repro.ecosystem.config import default_scenario
from repro.ecosystem.scenario_io import (
    save_world,
    scenario_to_dict,
    world_to_dict,
)
from repro.lint import WORLD_FORMAT, classify_document, lint_scenario_data
from repro.lint.diagnostics import Severity


@pytest.fixture(scope="module")
def small_world_result(tiny_bundle):
    """The shared tiny world's result, exported/linted read-only here."""
    return tiny_bundle.world


def world_doc(**overrides) -> dict:
    """A minimal, violation-free world dump to seed violations into."""
    doc = {
        "format": WORLD_FORMAT,
        "ingest_policy": {"gap_bridge_days": 0, "strict": False},
        "faults": None,
        "repositories": [
            {"operator": "sim-verisign", "tlds": ["com", "net"]},
            {"operator": "sim-neustar", "tlds": ["biz", "us"]},
        ],
        "hosts": [],
        "domains": [],
        "renames": [],
    }
    doc.update(overrides)
    return doc


def lint(doc: dict) -> list:
    return lint_scenario_data(doc, "world.json")


def rule_ids(doc: dict) -> list[str]:
    return [d.rule_id for d in lint(doc)]


class TestClassification:
    def test_world_recognized(self):
        assert classify_document(world_doc()) == "world"

    def test_scenario_recognized(self):
        assert classify_document(scenario_to_dict(default_scenario(1))) == (
            "scenario"
        )

    def test_unrelated_json_skipped(self):
        assert classify_document({"widgets": []}) is None
        assert lint({"widgets": []}) == []

    def test_clean_minimal_world(self):
        assert rule_ids(world_doc()) == []


class TestDanglingHostReference:
    def test_missing_host_object_is_scn101(self):
        doc = world_doc(
            domains=[
                {
                    "name": "example.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                    "purge_days": [],
                    "delegations": [
                        {"ns": "ns1.missing.com", "intervals": [[0, 100]]}
                    ],
                }
            ],
        )
        diags = lint(doc)
        assert [d.rule_id for d in diags] == ["SCN101"]
        assert diags[0].symbol == "example.com"

    def test_host_closing_mid_delegation_is_scn101(self):
        doc = world_doc(
            hosts=[
                {
                    "name": "ns1.gone.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, 50]],
                }
            ],
            domains=[
                {
                    "name": "example.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                    "purge_days": [],
                    "delegations": [
                        {"ns": "ns1.gone.com", "intervals": [[0, 100]]}
                    ],
                }
            ],
        )
        assert rule_ids(doc) == ["SCN101"]

    def test_same_name_other_repository_does_not_satisfy(self):
        # The paper's cross-repository point: an external object in
        # another repository is NOT the host object this domain's NS
        # reference resolves to.
        doc = world_doc(
            hosts=[
                {
                    "name": "ns1.other.com",
                    "repository": "sim-neustar",
                    "intervals": [[0, None]],
                }
            ],
            domains=[
                {
                    "name": "example.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                    "purge_days": [],
                    "delegations": [
                        {"ns": "ns1.other.com", "intervals": [[0, 100]]}
                    ],
                }
            ],
        )
        assert rule_ids(doc) == ["SCN101"]

    def test_covered_delegation_clean(self):
        doc = world_doc(
            hosts=[
                {
                    "name": "ns1.alive.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                }
            ],
            domains=[
                {
                    "name": "example.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                    "purge_days": [],
                    "delegations": [
                        {"ns": "ns1.alive.com", "intervals": [[5, 100]]}
                    ],
                }
            ],
        )
        assert rule_ids(doc) == []


def _deletion_world(purge_days: list[int]) -> dict:
    """zoninu.com ends on day 50 while ns1.zoninu.com serves victim.com."""
    return world_doc(
        hosts=[
            {
                "name": "ns1.zoninu.com",
                "repository": "sim-verisign",
                "intervals": [[0, None]],
            }
        ],
        domains=[
            {
                "name": "zoninu.com",
                "repository": "sim-verisign",
                "intervals": [[0, 50]],
                "purge_days": purge_days,
                "delegations": [
                    {"ns": "ns1.zoninu.com", "intervals": [[0, 50]]}
                ],
            },
            {
                "name": "victim.com",
                "repository": "sim-verisign",
                "intervals": [[0, None]],
                "purge_days": [],
                "delegations": [
                    {"ns": "ns1.zoninu.com", "intervals": [[10, 200]]}
                ],
            },
        ],
    )


class TestDeleteWithLinkedHosts:
    def test_delete_leaving_linked_subordinate_is_scn102(self):
        diags = lint(_deletion_world(purge_days=[]))
        assert [d.rule_id for d in diags] == ["SCN102"]
        assert diags[0].symbol == "zoninu.com"
        assert diags[0].severity is Severity.ERROR

    def test_registry_purge_is_scn107_warning(self):
        diags = lint(_deletion_world(purge_days=[50]))
        assert [d.rule_id for d in diags] == ["SCN107"]
        assert diags[0].severity is Severity.WARNING

    def test_subordinate_closed_before_delete_clean(self):
        # The sacrificial-rename workaround: the host name is gone by
        # deletion day, so nothing is left linked.
        doc = _deletion_world(purge_days=[])
        doc["hosts"][0]["intervals"] = [[0, 40]]
        doc["domains"][1]["delegations"][0]["intervals"] = [[10, 40]]
        doc["domains"][0]["delegations"][0]["intervals"] = [[0, 40]]
        assert rule_ids(doc) == []


class TestSacrificialRename:
    def _rename(self, new: str) -> dict:
        return world_doc(
            renames=[
                {
                    "day": 30,
                    "old": "ns1.zoninu.biz",
                    "new": new,
                    "repository": "sim-neustar",
                    "registrar": "registrar-1",
                    "sacrificial": True,
                }
            ],
        )

    def test_in_repository_target_is_scn103(self):
        diags = lint(self._rename("dropped-h8k2.biz"))
        assert [d.rule_id for d in diags] == ["SCN103"]
        assert diags[0].symbol == "dropped-h8k2.biz"

    def test_out_of_repository_target_clean(self):
        assert rule_ids(self._rename("dropped-h8k2.com")) == []

    def test_non_sacrificial_rename_not_checked(self):
        doc = self._rename("renamed.biz")
        doc["renames"][0]["sacrificial"] = False
        assert rule_ids(doc) == []


class TestIntervalHygiene:
    def _delegation_world(self, intervals, gap_bridge_days=0) -> dict:
        return world_doc(
            ingest_policy={"gap_bridge_days": gap_bridge_days, "strict": False},
            hosts=[
                {
                    "name": "ns1.foo.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                }
            ],
            domains=[
                {
                    "name": "example.com",
                    "repository": "sim-verisign",
                    "intervals": [[0, None]],
                    "purge_days": [],
                    "delegations": [
                        {"ns": "ns1.foo.com", "intervals": intervals}
                    ],
                }
            ],
        )

    def test_overlapping_intervals_is_scn104(self):
        diags = lint(self._delegation_world([[0, 100], [50, 150]]))
        assert [d.rule_id for d in diags] == ["SCN104"]
        assert diags[0].symbol == "example.com"

    def test_disjoint_intervals_clean(self):
        assert rule_ids(self._delegation_world([[0, 50], [80, 150]])) == []

    def test_gap_within_bridge_window_is_scn105(self):
        doc = self._delegation_world([[0, 10], [13, 20]], gap_bridge_days=5)
        assert rule_ids(doc) == ["SCN105"]

    def test_gap_beyond_bridge_window_clean(self):
        doc = self._delegation_world([[0, 10], [40, 50]], gap_bridge_days=5)
        assert rule_ids(doc) == []


class TestFaultConfigRule:
    def test_out_of_range_rate_is_scn106(self):
        doc = world_doc(faults={"seed": 1, "snapshot_drop_rate": 1.5})
        assert "SCN106" in rule_ids(doc)

    def test_unknown_field_is_scn106(self):
        doc = world_doc(faults={"seed": 1, "not_a_field": True})
        assert rule_ids(doc) == ["SCN106"]

    def test_valid_faults_clean(self):
        doc = world_doc(faults={"seed": 1, "snapshot_drop_rate": 0.1})
        assert rule_ids(doc) == []


class TestMalformedDocuments:
    def test_bad_interval_shape_is_scn100(self):
        doc = world_doc(
            hosts=[
                {
                    "name": "ns1.foo.com",
                    "repository": "sim-verisign",
                    "intervals": [[0]],
                }
            ],
        )
        assert "SCN100" in rule_ids(doc)

    def test_missing_repository_is_scn100(self):
        doc = world_doc(
            domains=[
                {
                    "name": "example.com",
                    "intervals": [[0, None]],
                    "purge_days": [],
                    "delegations": [],
                }
            ],
        )
        assert "SCN100" in rule_ids(doc)

    def test_unknown_rename_repository_is_scn100(self):
        doc = world_doc(
            renames=[
                {
                    "day": 3,
                    "old": "ns1.a.com",
                    "new": "b.info",
                    "repository": "sim-afilias",
                    "sacrificial": True,
                }
            ],
        )
        assert rule_ids(doc) == ["SCN100"]


class TestScenarioDocuments:
    def test_default_scenario_clean(self):
        doc = scenario_to_dict(default_scenario(7))
        assert lint_scenario_data(doc, "scenario.json") == []

    def test_broken_scenario_is_scn108(self):
        doc = scenario_to_dict(default_scenario(7))
        del doc["registrars"][0]["ident"]
        ids = [d.rule_id for d in lint_scenario_data(doc, "scenario.json")]
        assert ids == ["SCN108"]

    def test_bad_faults_in_scenario_is_scn106(self):
        doc = scenario_to_dict(default_scenario(7))
        doc["faults"]["whois_gap_rate"] = 2.0
        ids = [d.rule_id for d in lint_scenario_data(doc, "scenario.json")]
        assert "SCN106" in ids


class TestWorldExport:
    def test_pristine_world_export_has_no_errors(self, small_world_result):
        doc = world_to_dict(small_world_result)
        assert classify_document(doc) == "world"
        errors = [
            d for d in lint_scenario_data(doc, "world.json")
            if d.severity is Severity.ERROR
        ]
        assert errors == []

    def test_save_world_round_trips_through_file_lint(
        self, small_world_result, tmp_path
    ):
        from repro.lint import LintConfig
        from repro.lint.scenario_engine import lint_scenario_file

        path = save_world(small_world_result, tmp_path / "world.json")
        diags = lint_scenario_file(path, "world.json", LintConfig())
        assert [d for d in diags if d.severity is Severity.ERROR] == []

    def test_export_names_every_repository(self, small_world_result):
        doc = world_to_dict(small_world_result)
        operators = {r["operator"] for r in doc["repositories"]}
        assert {d["repository"] for d in doc["domains"]} <= operators
        assert {h["repository"] for h in doc["hosts"]} <= operators
