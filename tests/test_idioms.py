"""Tests for registrar renaming idioms (paper Tables 1, 2, 6)."""

import random
import re

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.names import Name
from repro.registrar.idioms import (
    DeletedDropIdiom,
    DropThisHostIdiom,
    Enom123BizIdiom,
    PleaseDropThisHostIdiom,
    ReservedLabelIdiom,
    SinkDomainIdiom,
    SldRandomSuffixIdiom,
    idiom_catalog,
    random_alnum,
    random_uuid,
)


@pytest.fixture()
def rng():
    return random.Random(42)


class TestRandomHelpers:
    def test_alnum_length(self, rng):
        assert len(random_alnum(rng, 8)) == 8

    def test_alnum_charset(self, rng):
        assert re.fullmatch(r"[a-z0-9]{20}", random_alnum(rng, 20))

    def test_uuid_shape(self, rng):
        assert re.fullmatch(
            r"[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}",
            random_uuid(rng),
        )

    def test_deterministic_given_seed(self):
        a = random_alnum(random.Random(7), 10)
        b = random_alnum(random.Random(7), 10)
        assert a == b


class TestPleaseDropThisHost:
    def test_shape(self, rng):
        name = PleaseDropThisHostIdiom().rename("ns2.example.com", rng)
        assert re.fullmatch(r"pleasedropthishost[a-z0-9]+\.example\.biz", name)

    def test_preserves_sld(self, rng):
        name = PleaseDropThisHostIdiom().rename("ns1.foo.com", rng)
        assert ".foo.biz" in name

    def test_biz_source_goes_to_com(self, rng):
        name = PleaseDropThisHostIdiom().rename("ns1.foo.biz", rng)
        assert name.endswith(".foo.com")

    def test_hijackable(self):
        assert PleaseDropThisHostIdiom().hijackable

    def test_attempt_varies_name(self, rng):
        idiom = PleaseDropThisHostIdiom()
        a = idiom.rename("ns1.foo.com", random.Random(1), attempt=0)
        b = idiom.rename("ns1.foo.com", random.Random(1), attempt=1)
        assert a != b


class TestDropThisHost:
    def test_shape(self, rng):
        name = DropThisHostIdiom().rename("ns2.example.com", rng)
        assert re.fullmatch(r"dropthishost-[0-9a-f-]+\.biz", name)

    def test_does_not_preserve_original(self, rng):
        name = DropThisHostIdiom().rename("ns2.example.com", rng)
        assert "example" not in name

    def test_always_biz(self, rng):
        assert DropThisHostIdiom().rename("ns1.foo.net", rng).endswith(".biz")


class TestDeletedDrop:
    def test_shape(self, rng):
        name = DeletedDropIdiom().rename("ns1.foo.com", rng)
        assert re.fullmatch(r"deleted-[a-z0-9]+\.drop-[a-z0-9]+\.biz", name)


class TestEnom123:
    def test_shape(self, rng):
        assert Enom123BizIdiom().rename("ns1.foo.com", rng) == "ns1.foo123.biz"

    def test_preserves_host_label(self, rng):
        assert Enom123BizIdiom().rename("ns7.bar.net", rng) == "ns7.bar123.biz"

    def test_attempt_appends_digits(self, rng):
        assert Enom123BizIdiom().rename("ns1.foo.com", rng, attempt=2) == "ns1.foo1232.biz"


class TestSldRandomSuffix:
    def test_shape(self, rng):
        name = SldRandomSuffixIdiom(rand_length=6).rename("ns1.foo.com", rng)
        assert re.fullmatch(r"ns1\.foo[a-z0-9]{6}\.biz", name)

    def test_biz_source_goes_to_com(self, rng):
        name = SldRandomSuffixIdiom().rename("ns1.foo.biz", rng)
        assert name.endswith(".com")

    def test_custom_length(self, rng):
        name = SldRandomSuffixIdiom(rand_length=9).rename("ns1.foo.com", rng)
        sld = name.split(".")[1]
        assert len(sld) == len("foo") + 9


class TestSinkDomain:
    def test_shape(self, rng):
        idiom = SinkDomainIdiom("dummyns.com")
        name = idiom.rename("ns2.foo.com", rng)
        assert name.endswith(".dummyns.com")
        assert "ns2-foo-com" in name

    def test_not_hijackable(self):
        assert not SinkDomainIdiom("dummyns.com").hijackable

    def test_declares_sink_requirement(self):
        assert SinkDomainIdiom("dummyns.com").sink_domains_needed() == ("dummyns.com",)

    def test_idiom_id_is_upper_sink(self):
        assert SinkDomainIdiom("dummyns.com").idiom_id == "DUMMYNS.COM"


class TestReservedLabel:
    def test_shape(self, rng):
        name = ReservedLabelIdiom().rename("ns1.foo.com", rng)
        assert name.endswith(".empty.as112.arpa")

    def test_no_sink_registration_needed(self):
        assert ReservedLabelIdiom().sink_domains_needed() == ()

    def test_not_hijackable(self):
        assert not ReservedLabelIdiom().hijackable


class TestCatalog:
    def test_contains_all_paper_idioms(self):
        catalog = idiom_catalog()
        for idiom_id in (
            "DUMMYNS.COM", "LAMEDELEGATION.ORG", "NSHOLDFIX.COM",
            "DELETE-HOST.COM", "DELETEDNS.COM",
            "PLEASEDROPTHISHOST", "DROPTHISHOST", "DELETED-DROP",
            "123.BIZ", "XXXXX.BIZ",
            "EMPTY.AS112.ARPA", "NOTAPLACETO.BE", "DELETE-REGISTRATION.COM",
        ):
            assert idiom_id in catalog, idiom_id

    def test_hijackable_split_matches_paper(self):
        catalog = idiom_catalog()
        hijackable = {i for i, idiom in catalog.items() if idiom.hijackable}
        assert hijackable == {
            "PLEASEDROPTHISHOST", "DROPTHISHOST", "DELETED-DROP",
            "123.BIZ", "XXXXX.BIZ",
        }


host_labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=2, max_size=12)


class TestIdiomProperties:
    @given(host_labels, host_labels, st.integers(min_value=0, max_value=5))
    def test_all_idioms_produce_valid_names(self, sub, sld, attempt):
        host = f"{sub}.{sld}.com"
        rng = random.Random(13)
        for idiom in idiom_catalog().values():
            produced = idiom.rename(host, rng, attempt=attempt)
            assert Name(produced)  # parses/validates

    @given(host_labels, host_labels)
    def test_hijackable_idioms_change_registered_domain(self, sub, sld):
        from repro.dnscore.psl import default_psl
        psl = default_psl()
        host = f"{sub}.{sld}.com"
        rng = random.Random(5)
        for idiom in idiom_catalog().values():
            if not idiom.hijackable:
                continue
            produced = idiom.rename(host, rng)
            assert psl.registered_domain(produced) != psl.registered_domain(host)

    @given(host_labels, host_labels)
    def test_rename_target_is_external_tld(self, sub, sld):
        """Hijackable renames always leave the source TLD."""
        host = f"{sub}.{sld}.com"
        rng = random.Random(5)
        for idiom in idiom_catalog().values():
            if not idiom.hijackable:
                continue
            produced = idiom.rename(host, rng)
            assert Name(produced).tld != "com"
