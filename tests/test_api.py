"""Tests for the top-level convenience API."""

import pytest

from repro.api import ReproBundle, reproduce


class TestReproduce:
    def test_bundle_shape(self, tiny_bundle):
        assert isinstance(tiny_bundle, ReproBundle)
        assert tiny_bundle.zonedb is tiny_bundle.world.zonedb
        assert tiny_bundle.whois is tiny_bundle.world.whois
        assert tiny_bundle.pipeline.sacrificial
        assert tiny_bundle.study.groups

    def test_cache_returns_same_object(self):
        first = reproduce(scale=0.1)
        second = reproduce(scale=0.1)
        assert first is second

    def test_cache_keyed_by_seed_and_scale(self):
        a = reproduce(scale=0.1)
        b = reproduce(scale=0.1, seed=2022)
        assert a is not b

    def test_no_cache_builds_fresh(self):
        cached = reproduce(scale=0.1)
        fresh = reproduce(scale=0.1, use_cache=False)
        assert cached is not fresh
        assert len(fresh.pipeline.sacrificial) == len(cached.pipeline.sacrificial)

    def test_mine_patterns_bypasses_cache_and_mines(self):
        bundle = reproduce(scale=0.1, mine_patterns=True)
        assert bundle.pipeline.mined_patterns

    def test_package_reexports(self):
        import repro
        assert repro.reproduce is reproduce
        assert repro.__version__
