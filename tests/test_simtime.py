"""Unit and property tests for day-granularity simulation time."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro import simtime
from repro.simtime import Interval, merge_intervals, total_days


class TestDayConversion:
    def test_epoch_is_day_zero(self):
        assert simtime.to_day(simtime.EPOCH) == 0

    def test_to_date_round_trip(self):
        assert simtime.to_date(0) == simtime.EPOCH

    def test_day_after_epoch(self):
        assert simtime.to_day(dt.date(2011, 4, 2)) == 1

    def test_negative_days_before_epoch(self):
        assert simtime.to_day(dt.date(2011, 3, 31)) == -1

    def test_study_end_is_late_2020(self):
        day = simtime.to_day(simtime.STUDY_END)
        assert simtime.to_date(day).year == 2020

    @given(st.integers(min_value=-5000, max_value=10000))
    def test_round_trip_property(self, day):
        assert simtime.to_day(simtime.to_date(day)) == day


class TestMonths:
    def test_month_of_epoch(self):
        assert simtime.month_of(0) == "2011-04"

    def test_month_index_of_epoch(self):
        assert simtime.month_index(0) == 0

    def test_month_index_next_year(self):
        assert simtime.month_index(simtime.to_day(dt.date(2012, 4, 1))) == 12

    def test_month_label_inverse(self):
        assert simtime.month_label(0) == "2011-04"
        assert simtime.month_label(12) == "2012-04"
        assert simtime.month_label(9) == "2012-01"

    @given(st.integers(min_value=0, max_value=3800))
    def test_label_matches_index(self, day):
        assert simtime.month_label(simtime.month_index(day)) == simtime.month_of(day)

    def test_months_between_spans_inclusive(self):
        months = list(simtime.months_between(0, 60))
        assert months[0] == "2011-04"
        assert months[-1] == "2011-05"

    def test_months_between_single_month(self):
        assert list(simtime.months_between(3, 10)) == ["2011-04"]


class TestInterval:
    def test_contains_start(self):
        assert Interval(5, 10).contains(5)

    def test_excludes_end(self):
        assert not Interval(5, 10).contains(10)

    def test_open_interval_contains_far_future(self):
        assert Interval(5).contains(100000)

    def test_open_interval_excludes_before_start(self):
        assert not Interval(5).contains(4)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            Interval(10, 5)

    def test_zero_length_is_allowed_but_empty(self):
        interval = Interval(5, 5)
        assert not interval.contains(5)
        assert interval.duration() == 0

    def test_duration_closed(self):
        assert Interval(5, 10).duration() == 5

    def test_duration_open_needs_horizon(self):
        with pytest.raises(ValueError):
            Interval(5).duration()

    def test_duration_open_with_horizon(self):
        assert Interval(5).duration(12) == 7

    def test_closed_clamps_open_end(self):
        assert Interval(5).closed(8) == Interval(5, 8)

    def test_closed_noop_for_closed(self):
        assert Interval(5, 7).closed(100) == Interval(5, 7)

    def test_overlaps_adjacent_is_false(self):
        assert not Interval(0, 5).overlaps(Interval(5, 10))

    def test_overlaps_one_day(self):
        assert Interval(0, 6).overlaps(Interval(5, 10))

    def test_intersect_disjoint_is_none(self):
        assert Interval(0, 5).intersect(Interval(6, 10)) is None

    def test_intersect_partial(self):
        assert Interval(0, 6).intersect(Interval(4, 10)) == Interval(4, 6)

    def test_intersect_open_ends(self):
        assert Interval(3).intersect(Interval(5)) == Interval(5)

    def test_intersect_open_with_closed(self):
        assert Interval(3).intersect(Interval(1, 7)) == Interval(3, 7)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_preserved(self):
        result = merge_intervals([Interval(0, 2), Interval(5, 7)])
        assert result == [Interval(0, 2), Interval(5, 7)]

    def test_overlapping_coalesce(self):
        result = merge_intervals([Interval(0, 5), Interval(3, 9)])
        assert result == [Interval(0, 9)]

    def test_adjacent_coalesce(self):
        result = merge_intervals([Interval(0, 5), Interval(5, 9)])
        assert result == [Interval(0, 9)]

    def test_unsorted_input(self):
        result = merge_intervals([Interval(5, 7), Interval(0, 6)])
        assert result == [Interval(0, 7)]

    def test_open_interval_absorbs(self):
        result = merge_intervals([Interval(0, 5), Interval(3, None)])
        assert result == [Interval(0, None)]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=20,
        )
    )
    def test_merged_cover_same_days(self, raw):
        intervals = [Interval(start, start + length) for start, length in raw]
        merged = merge_intervals(intervals)
        days_before = set()
        for interval in intervals:
            days_before.update(range(interval.start, interval.end))
        days_after = set()
        for interval in merged:
            days_after.update(range(interval.start, interval.end))
        assert days_before == days_after

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=50),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_merged_are_disjoint_and_sorted(self, raw):
        intervals = [Interval(start, start + length) for start, length in raw]
        merged = merge_intervals(intervals)
        for left, right in zip(merged, merged[1:]):
            assert left.end is not None
            assert left.end < right.start  # adjacent ranges were coalesced


class TestTotalDays:
    def test_simple(self):
        assert total_days([Interval(0, 5)], horizon=100) == 5

    def test_overlap_counted_once(self):
        assert total_days([Interval(0, 5), Interval(3, 8)], horizon=100) == 8

    def test_open_clamped(self):
        assert total_days([Interval(95)], horizon=100) == 5
