"""Smoke tests for the store benchmark harness (repro.store.bench)."""

from __future__ import annotations

import json

from repro.store.bench import main, run_benchmarks, run_incremental_benchmarks


def test_run_benchmarks_shape(tmp_path):
    report = run_benchmarks(
        domains=20, days=4, query_rounds=2, scale=0.1, shards=2,
        tmp_dir=tmp_path,
    )
    assert report["format"] == "riskybiz-bench-store/1"
    assert [entry["backend"] for entry in report["ingest"]] == [
        "memory", "sqlite"
    ]
    for entry in report["ingest"]:
        assert entry["events"] == 80
        assert entry["events_per_second"] > 0
    for entry in report["ns_records"]:
        assert entry["calls"] > 0
        assert entry["microseconds_per_call"] > 0
    pipeline = report["pipeline"]
    assert pipeline["unsharded_seconds"] > 0
    assert pipeline["sharded_seconds"] > 0
    assert pipeline["shards"] == 2


def test_run_incremental_benchmarks_shape(tmp_path):
    report = run_incremental_benchmarks(scale=0.1, tmp_dir=tmp_path)
    assert report["format"] == "riskybiz-bench-incremental/1"
    section = report["incremental"]
    assert section["batch_seconds"] > 0
    assert [entry["backend"] for entry in section["backends"]] == [
        "memory", "sqlite"
    ]
    for entry in section["backends"]:
        # The incremental engine's reason to exist: the final-day fold
        # must be far cheaper than a batch re-run, with the same result.
        assert entry["digest_matches_batch"] is True
        assert entry["speedup_vs_batch"] >= 5
        assert entry["days"] > 1


def test_cli_writes_incremental_json(tmp_path, capsys):
    out = tmp_path / "BENCH_incremental.json"
    code = main([
        "--incremental", "--out", str(out), "--scale", "0.1",
        "--sqlite-dir", str(tmp_path),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["format"] == "riskybiz-bench-incremental/1"
    err = capsys.readouterr().err
    assert "incremental[sqlite]" in err and "digest match: True" in err


def test_cli_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_store.json"
    code = main([
        "--out", str(out), "--domains", "20", "--days", "4",
        "--query-rounds", "2", "--scale", "0.1", "--shards", "2",
        "--sqlite-dir", str(tmp_path),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["parameters"]["shards"] == 2
    err = capsys.readouterr().err
    assert "ingest[sqlite]" in err and "pipeline:" in err
