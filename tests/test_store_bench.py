"""Smoke tests for the store benchmark harness (repro.store.bench)."""

from __future__ import annotations

import json

from repro.store.bench import main, run_benchmarks


def test_run_benchmarks_shape(tmp_path):
    report = run_benchmarks(
        domains=20, days=4, query_rounds=2, scale=0.1, shards=2,
        tmp_dir=tmp_path,
    )
    assert report["format"] == "riskybiz-bench-store/1"
    assert [entry["backend"] for entry in report["ingest"]] == [
        "memory", "sqlite"
    ]
    for entry in report["ingest"]:
        assert entry["events"] == 80
        assert entry["events_per_second"] > 0
    for entry in report["ns_records"]:
        assert entry["calls"] > 0
        assert entry["microseconds_per_call"] > 0
    pipeline = report["pipeline"]
    assert pipeline["unsharded_seconds"] > 0
    assert pipeline["sharded_seconds"] > 0
    assert pipeline["shards"] == 2


def test_cli_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_store.json"
    code = main([
        "--out", str(out), "--domains", "20", "--days", "4",
        "--query-rounds", "2", "--scale", "0.1", "--shards", "2",
        "--sqlite-dir", str(tmp_path),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["parameters"]["shards"] == 2
    err = capsys.readouterr().err
    assert "ingest[sqlite]" in err and "pipeline:" in err
