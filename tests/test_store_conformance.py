"""Backend-conformance suite for the DelegationStore protocol.

Every behavioral contract here is asserted against both backends via a
parametrized fixture: the in-memory reference store and the SQLite
on-disk store must be observationally interchangeable — same visible
intervals, same same-day-annihilation semantics, same presence and meta
round-trips, deterministic enumeration. Iteration *order* of name
enumerations is a per-backend contract (memory: first-seen order,
SQLite: lexicographic) and is pinned separately; everything the
detection layer consumes is order-normalized above the store.

The façade-level tests (gap bridging, fault schedules) live in
test_zonedb*.py and run over both backends too; this module pins down
the protocol layer itself.
"""

from __future__ import annotations

import pytest

from repro.store.base import DOMAIN, GLUE, DelegationStore
from repro.store.memory import MemoryDelegationStore
from repro.store.sqlite import SqliteDelegationStore
from repro.zonedb.database import IngestPolicy, ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "sqlite":
        backing = SqliteDelegationStore(tmp_path / "store.sqlite")
    else:
        backing = MemoryDelegationStore()
    yield backing
    backing.close()


def test_backends_satisfy_protocol(store):
    assert isinstance(store, DelegationStore)
    assert store.backend_name in {"memory", "sqlite"}


class TestPairIntervals:
    def test_open_then_close(self, store):
        store.open_pair("a.biz", "ns1.x.com", 0)
        store.close_pair("a.biz", "ns1.x.com", 5)
        records = store.domain_records("a.biz")
        assert [r.as_tuple() for r in records] == [("a.biz", "ns1.x.com", 0, 5)]
        assert store.ns_records("ns1.x.com")[0].as_tuple() == (
            "a.biz", "ns1.x.com", 0, 5
        )

    def test_open_interval_visible_from_both_sides(self, store):
        store.open_pair("a.biz", "ns1.x.com", 3)
        assert store.domain_records("a.biz")[0].end is None
        assert store.ns_records("ns1.x.com")[0].end is None
        assert store.current_nameservers("a.biz") == {"ns1.x.com"}

    def test_same_day_annihilation(self, store):
        """open+close on the same day leaves no trace (daily granularity)."""
        store.open_pair("flash.biz", "ns1.x.com", 7)
        store.close_pair("flash.biz", "ns1.x.com", 7)
        assert store.domain_records("flash.biz") == []
        assert store.ns_records("ns1.x.com") == []
        assert store.current_nameservers("flash.biz") == frozenset()
        assert "flash.biz" not in list(store.all_domains())
        assert "ns1.x.com" not in list(store.all_nameservers())

    def test_reopen_after_close(self, store):
        store.open_pair("a.biz", "ns1.x.com", 0)
        store.close_pair("a.biz", "ns1.x.com", 4)
        store.open_pair("a.biz", "ns1.x.com", 9)
        spans = [(r.start, r.end) for r in store.domain_records("a.biz")]
        assert spans == [(0, 4), (9, None)]

    def test_close_unopened_pair_is_noop(self, store):
        store.close_pair("ghost.biz", "ns1.x.com", 5)
        assert store.domain_records("ghost.biz") == []

    def test_add_record_bulk_copy(self, store):
        store.add_record("a.biz", "ns1.x.com", 0, 5)
        store.add_record("a.biz", "ns2.x.com", 2, None)
        assert store.current_nameservers("a.biz") == {"ns2.x.com"}
        spans = {
            r.ns: (r.start, r.end) for r in store.domain_records("a.biz")
        }
        assert spans == {"ns1.x.com": (0, 5), "ns2.x.com": (2, None)}

    def test_current_domains_suffix_filter(self, store):
        store.open_pair("a.biz", "ns1.x.com", 0)
        store.open_pair("b.com", "ns1.x.com", 0)
        assert set(store.current_domains()) == {"a.biz", "b.com"}
        assert list(store.current_domains(".biz")) == ["a.biz"]


class TestEnumeration:
    def _populate(self, store):
        # Chronological, as real ingestion always is.
        store.open_pair("c.biz", "ns1.x.com", 0)
        store.open_pair("a.biz", "ns2.x.com", 1)
        store.close_pair("a.biz", "ns2.x.com", 2)
        store.open_pair("b.biz", "ns2.x.com", 3)
        store.open_pair("a.biz", "ns2.x.com", 4)

    def test_enumeration_is_deterministic(self, store):
        self._populate(store)
        assert list(store.all_domains()) == list(store.all_domains())
        assert list(store.all_nameservers()) == list(store.all_nameservers())
        assert set(store.all_domains()) == {"a.biz", "b.biz", "c.biz"}
        assert set(store.all_nameservers()) == {"ns1.x.com", "ns2.x.com"}

    def test_per_backend_name_order(self, store):
        self._populate(store)
        domains = list(store.all_domains())
        if store.backend_name == "memory":
            assert domains == ["c.biz", "a.biz", "b.biz"]  # first-seen
        else:
            assert domains == ["a.biz", "b.biz", "c.biz"]  # lexicographic

    def test_records_ordered_by_start(self, store):
        self._populate(store)
        ns_starts = [r.start for r in store.ns_records("ns2.x.com")]
        assert ns_starts == sorted(ns_starts)
        domain_starts = [r.start for r in store.domain_records("a.biz")]
        assert domain_starts == sorted(domain_starts)

    def test_counts(self, store):
        self._populate(store)
        assert store.domain_count() == 3
        assert store.nameserver_count() == 2


class TestPartitions:
    def test_domains_in_tld(self, store):
        store.open_pair("a.biz", "ns1.x.com", 0)
        store.open_pair("b.com", "ns1.x.com", 0)
        store.open_pair("c.biz", "ns2.x.com", 0)
        assert sorted(store.domains_in_tld("biz")) == ["a.biz", "c.biz"]
        assert list(store.domains_in_tld("com")) == ["b.com"]
        assert list(store.domains_in_tld("org")) == []

    def test_partitions_enumerate_tlds(self, store):
        store.open_pair("a.biz", "ns1.x.com", 0)
        store.open_pair("b.com", "ns1.x.com", 0)
        assert sorted(store.partitions()) == ["biz", "com"]


class TestPresence:
    def test_open_close_reopen(self, store):
        store.open_presence(GLUE, "ns1.a.biz", 0)
        store.close_presence(GLUE, "ns1.a.biz", 4)
        store.open_presence(GLUE, "ns1.a.biz", 9)
        spans = store.presence_intervals(GLUE, "ns1.a.biz")
        assert [(s.start, s.end) for s in spans] == [(0, 4), (9, None)]
        assert store.presence_contains(GLUE, "ns1.a.biz", 2)
        assert not store.presence_contains(GLUE, "ns1.a.biz", 5)
        assert store.presence_contains(GLUE, "ns1.a.biz", 100)

    def test_same_day_presence_annihilates(self, store):
        store.open_presence(DOMAIN, "a.biz", 3)
        store.close_presence(DOMAIN, "a.biz", 3)
        assert store.presence_intervals(DOMAIN, "a.biz") == []
        assert "a.biz" not in list(store.presence_keys(DOMAIN))

    def test_kinds_are_independent(self, store):
        store.open_presence(GLUE, "shared.name", 0)
        assert not store.presence_contains(DOMAIN, "shared.name", 0)
        assert list(store.presence_keys(DOMAIN)) == []

    def test_presence_keys_sorted(self, store):
        for key in ("c.biz", "a.biz", "b.biz"):
            store.open_presence(DOMAIN, key, 0)
        assert list(store.presence_keys(DOMAIN)) == ["a.biz", "b.biz", "c.biz"]

    def test_add_presence_bulk_copy(self, store):
        store.add_presence(GLUE, "ns1.a.biz", 2, 8)
        store.add_presence(GLUE, "ns1.a.biz", 10, None)
        spans = store.presence_intervals(GLUE, "ns1.a.biz")
        assert [(s.start, s.end) for s in spans] == [(2, 8), (10, None)]


class TestMeta:
    def test_roundtrip(self, store):
        assert store.get_meta("missing") is None
        store.set_meta("k", "v1")
        store.set_meta("k", "v2")
        assert store.get_meta("k") == "v2"


class TestBackendEquivalence:
    """Drive both backends with the same schedule; compare full state."""

    def _drive(self, db: ZoneDatabase) -> None:
        timeline = {
            0: {"a.biz": {"ns1.x.com"}, "b.biz": {"ns2.x.com"}},
            7: {"a.biz": {"ns1.x.com", "ns3.x.com"}},
            # Day 21 deliberately skipped: exercises gap bridging.
            28: {"a.biz": {"ns3.x.com"}, "c.biz": {"ns1.x.com"}},
        }
        for day, state in sorted(timeline.items()):
            db.ingest_snapshot(
                ZoneSnapshot(
                    day=day, tld="biz",
                    delegations={d: frozenset(ns) for d, ns in state.items()},
                )
            )
        db.finalize_pending()

    def _fingerprint(self, db: ZoneDatabase):
        return {
            "domains": sorted(db.all_domains()),
            "nameservers": sorted(db.all_nameservers()),
            "records": sorted(
                r.as_tuple()
                for domain in db.all_domains()
                for r in db.domain_records(domain)
            ),
            "reports": [
                (rep.day, rep.ingested, rep.gaps_bridged, rep.closed_after_gap)
                for rep in db.ingest_reports
            ],
        }

    @pytest.mark.parametrize("gap", [0, 30])
    def test_identical_state_after_same_schedule(self, tmp_path, gap):
        policy = IngestPolicy(gap_bridge_days=gap)
        memory_db = ZoneDatabase(["biz"], ingest_policy=policy)
        sqlite_db = ZoneDatabase(
            ["biz"], ingest_policy=policy,
            store=SqliteDelegationStore(tmp_path / "eq.sqlite"),
        )
        self._drive(memory_db)
        self._drive(sqlite_db)
        assert self._fingerprint(memory_db) == self._fingerprint(sqlite_db)


class TestSqlitePersistence:
    def test_state_survives_reopen(self, tmp_path):
        path = tmp_path / "persist.sqlite"
        db = ZoneDatabase(["biz"], store=SqliteDelegationStore(path))
        db.set_delegation(0, "a.biz", ["ns1.x.com"])
        db.set_glue(0, "ns1.a.biz")
        db.advance(10)
        db.flush()
        db.close()

        reopened = ZoneDatabase(store=SqliteDelegationStore(path))
        assert reopened.covered_tlds == frozenset({"biz"})
        assert reopened.horizon == 10
        assert reopened.nameservers_of("a.biz", 5) == {"ns1.x.com"}
        assert reopened.glue_present("ns1.a.biz", 0)
