"""Tests for the content-addressed artifact cache (repro.store.artifacts)."""

from __future__ import annotations

import json

import pytest

from repro.ecosystem.config import default_scenario
from repro.store.artifacts import (
    ARTIFACT_FORMAT,
    ArtifactCache,
    ArtifactKey,
    content_digest,
    default_cache,
    scenario_digest,
)


class TestContentDigest:
    def test_key_order_does_not_matter(self):
        assert content_digest({"a": 1, "b": 2}) == content_digest({"b": 2, "a": 1})

    def test_values_matter(self):
        assert content_digest({"a": 1}) != content_digest({"a": 2})

    def test_is_sha256_hex(self):
        digest = content_digest({"a": 1})
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)

    def test_scenario_digest_tracks_config(self):
        base = default_scenario(2021)
        assert scenario_digest(base) == scenario_digest(default_scenario(2021))
        assert scenario_digest(base) != scenario_digest(default_scenario(7))
        assert scenario_digest(base) != scenario_digest(base.scaled(0.5))


class TestArtifactKey:
    def test_options_distinguish_keys(self):
        plain = ArtifactKey.build("bundle", "s" * 64)
        mined = ArtifactKey.build("bundle", "s" * 64, {"mine_patterns": True})
        assert plain.digest != mined.digest

    def test_none_options_equal_empty_options(self):
        assert ArtifactKey.build("k", "s").digest == ArtifactKey.build(
            "k", "s", {}
        ).digest

    def test_kind_distinguishes_keys(self):
        assert (
            ArtifactKey.build("world", "s").digest
            != ArtifactKey.build("bundle", "s").digest
        )

    def test_basename_is_filesystem_friendly(self):
        key = ArtifactKey.build("pipeline", "s" * 64)
        assert key.basename == f"pipeline-{key.digest[:32]}"


class TestMemoryLayer:
    def test_miss_then_hit(self):
        cache = ArtifactCache(capacity=4)
        key = ArtifactKey.build("k", "s")
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_identity_preserved(self):
        """Cached artifacts come back as the same object (bundle fixtures
        rely on this: reproduce(...) is reproduce(...))."""
        cache = ArtifactCache(capacity=4)
        key = ArtifactKey.build("k", "s")
        value = {"payload": [1, 2, 3]}
        cache.put(key, value)
        assert cache.get(key) is value

    def test_lru_bound_evicts_oldest(self):
        cache = ArtifactCache(capacity=2)
        keys = [ArtifactKey.build("k", "s", {"i": i}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert len(cache) == 2
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(capacity=2)
        keys = [ArtifactKey.build("k", "s", {"i": i}) for i in range(3)]
        cache.put(keys[0], 0)
        cache.put(keys[1], 1)
        cache.get(keys[0])  # 0 becomes most recent; 1 is now oldest
        cache.put(keys[2], 2)
        assert keys[0] in cache
        assert keys[1] not in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)

    def test_get_or_create_builds_once(self):
        cache = ArtifactCache(capacity=4)
        key = ArtifactKey.build("k", "s")
        calls = []
        build = lambda: calls.append(1) or "built"  # noqa: E731
        assert cache.get_or_create(key, build) == "built"
        assert cache.get_or_create(key, build) == "built"
        assert len(calls) == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ArtifactCache(capacity=4, root=tmp_path)
        key = ArtifactKey.build("k", "s")
        cache.put(key, "value")
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key) == "value"  # reloaded from disk


class TestDiskLayer:
    def test_roundtrip_across_instances(self, tmp_path):
        writer = ArtifactCache(root=tmp_path)
        key = ArtifactKey.build("pipeline", "a" * 64, {"strict": False})
        writer.put(key, {"funnel": 42})

        reader = ArtifactCache(root=tmp_path)
        assert reader.get(key) == {"funnel": 42}

    def test_manifest_contents(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = ArtifactKey.build("pipeline", "a" * 64)
        cache.put(key, "value")
        manifest = json.loads(cache.manifest_path(key).read_text())
        assert manifest["format"] == ARTIFACT_FORMAT
        assert manifest["kind"] == "pipeline"
        assert manifest["digest"] == key.digest
        assert manifest["scenario_digest"] == "a" * 64
        assert (tmp_path / manifest["artifact"]).exists()

    def test_manifest_passes_scenario_lint(self, tmp_path):
        """The sidecar satisfies SCN109 — the rule exists to catch
        artifacts written without provenance."""
        from repro.lint.scenario_engine import classify_document, lint_scenario_data

        cache = ArtifactCache(root=tmp_path)
        key = ArtifactKey.build("pipeline", "a" * 64)
        cache.put(key, "value")
        manifest = json.loads(cache.manifest_path(key).read_text())
        assert classify_document(manifest) == "manifest"
        assert lint_scenario_data(manifest, "m.json") == []

    def test_corrupt_pickle_is_a_miss(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = ArtifactKey.build("k", "s")
        cache.put(key, "value")
        (tmp_path / f"{key.basename}.pkl").write_bytes(b"not a pickle")
        cache.clear()
        assert cache.get(key) is None

    def test_unpicklable_value_stays_memory_only(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = ArtifactKey.build("k", "s")
        cache.put(key, lambda: None)  # lambdas cannot pickle
        assert cache.get(key) is not None
        assert not (tmp_path / f"{key.basename}.pkl").exists()

    def test_memory_only_put_never_touches_disk(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = ArtifactKey.build("k", "s")
        cache.put(key, "value", memory_only=True)
        assert not (tmp_path / f"{key.basename}.pkl").exists()

    def test_no_root_means_no_disk(self):
        cache = ArtifactCache()
        key = ArtifactKey.build("k", "s")
        assert cache.manifest_path(key) is None
        cache.put(key, "value")  # must not raise


def test_default_cache_is_process_wide_singleton():
    assert default_cache() is default_cache()
    assert default_cache().root is None
