"""Tests for server behaviours and the iterative resolver."""

import pytest

from repro.dnscore.records import RRType
from repro.resolver.resolver import IterativeResolver, ResolutionStatus
from repro.resolver.server import (
    AnsweringBehavior,
    NameserverBehavior,
    QueryRecord,
    ScopedBehavior,
    SilentBehavior,
)
from repro.zonedb.database import ZoneDatabase


@pytest.fixture()
def db():
    database = ZoneDatabase(["com", "biz"])
    # foo.com self-hosts with glue; bar.com uses foo.com's nameserver.
    database.set_delegation(0, "foo.com", ["ns1.foo.com"])
    database.set_glue(0, "ns1.foo.com")
    database.set_delegation(0, "bar.com", ["ns1.foo.com"])
    return database


@pytest.fixture()
def resolver(db):
    r = IterativeResolver(db)
    server = AnsweringBehavior()
    server.add_record("bar.com", RRType.A, "192.0.2.80")
    server.add_record("ns1.foo.com", RRType.A, "192.0.2.53")
    r.attach_server("ns1.foo.com", server)
    return r


class TestBehaviors:
    def test_silent_logs_but_never_answers(self):
        behavior = SilentBehavior()
        assert behavior.handle(0, "x.com", RRType.A, "192.0.2.1") is None
        assert behavior.query_log == [QueryRecord(0, "x.com", RRType.A, "192.0.2.1")]

    def test_answering_returns_records(self):
        behavior = AnsweringBehavior()
        behavior.add_record("x.com", RRType.A, "192.0.2.9")
        assert behavior.handle(0, "x.com", RRType.A, "1.2.3.4") == ["192.0.2.9"]

    def test_answering_unknown_name_silent(self):
        assert AnsweringBehavior().handle(0, "x.com", RRType.A, "1.2.3.4") is None

    def test_scoped_inside_network(self):
        scoped = ScopedBehavior(allowed_network="10.0.0.0/24")
        scoped.inner.add_record("x.com", RRType.A, "192.0.2.9")
        assert scoped.handle(5, "x.com", RRType.A, "10.0.0.7") == ["192.0.2.9"]

    def test_scoped_outside_network(self):
        scoped = ScopedBehavior(allowed_network="10.0.0.0/24")
        scoped.inner.add_record("x.com", RRType.A, "192.0.2.9")
        assert scoped.handle(5, "x.com", RRType.A, "203.0.113.9") is None

    def test_scoped_outside_window(self):
        scoped = ScopedBehavior(
            allowed_network="10.0.0.0/24", window_start=10, window_end=20
        )
        scoped.inner.add_record("x.com", RRType.A, "192.0.2.9")
        assert scoped.handle(9, "x.com", RRType.A, "10.0.0.7") is None
        assert scoped.handle(20, "x.com", RRType.A, "10.0.0.7") is None
        assert scoped.handle(15, "x.com", RRType.A, "10.0.0.7") == ["192.0.2.9"]

    def test_queries_for_filter(self):
        behavior = SilentBehavior()
        behavior.handle(0, "a.com", RRType.A, "1.1.1.1")
        behavior.handle(0, "b.com", RRType.A, "1.1.1.1")
        assert len(behavior.queries_for("a.com")) == 1

    def test_purge_logs(self):
        behavior = SilentBehavior()
        behavior.handle(0, "a.com", RRType.A, "1.1.1.1")
        assert behavior.purge_logs() == 1
        assert behavior.query_log == []


class TestResolution:
    def test_answers_via_glue(self, resolver):
        result = resolver.resolve("bar.com", day=1)
        assert result.ok
        assert result.answer == ["192.0.2.80"]
        assert result.answered_by == "ns1.foo.com"

    def test_nxdomain_when_not_delegated(self, resolver):
        result = resolver.resolve("ghost.com", day=1)
        assert result.status is ResolutionStatus.NXDOMAIN

    def test_lame_when_server_silent(self, db):
        resolver = IterativeResolver(db)
        resolver.attach_server("ns1.foo.com", SilentBehavior())
        result = resolver.resolve("bar.com", day=1)
        assert result.status is ResolutionStatus.LAME
        assert resolver.is_lame("bar.com", day=1)

    def test_unresolvable_ns_when_no_server(self, db):
        resolver = IterativeResolver(db)
        result = resolver.resolve("bar.com", day=1)
        assert result.status is ResolutionStatus.LAME  # glue exists, no one home

    def test_sacrificial_delegation_is_unresolvable(self, db, resolver):
        """A rename to an unregistered .biz name breaks resolution."""
        db.set_delegation(5, "bar.com", ["ns2.fooxxxx.biz"])
        result = resolver.resolve("bar.com", day=6)
        assert result.status is ResolutionStatus.UNRESOLVABLE_NS

    def test_hijack_restores_resolution_to_attacker(self, db, resolver):
        db.set_delegation(5, "bar.com", ["ns2.fooxxxx.biz"])
        # Hijacker registers fooxxxx.biz with glue for the sacrificial name.
        db.set_delegation(10, "fooxxxx.biz", ["ns2.fooxxxx.biz"])
        db.set_glue(10, "ns2.fooxxxx.biz")
        hijacker = AnsweringBehavior()
        hijacker.add_record("bar.com", RRType.A, "198.51.100.66")
        resolver.attach_server("ns2.fooxxxx.biz", hijacker)
        result = resolver.resolve("bar.com", day=11)
        assert result.ok
        assert result.answer == ["198.51.100.66"]
        assert result.answered_by == "ns2.fooxxxx.biz"

    def test_recursive_ns_address_resolution(self, db):
        """NS without glue resolves through its own domain's delegation."""
        db.set_delegation(0, "provider.com", ["ns1.foo.com"])
        db.set_delegation(0, "client.com", ["dns.provider.com"])
        provider_server = AnsweringBehavior()
        provider_server.add_record("dns.provider.com", RRType.A, "192.0.2.44")
        client_server = AnsweringBehavior()
        client_server.add_record("client.com", RRType.A, "192.0.2.99")
        resolver = IterativeResolver(db)
        resolver.attach_server("ns1.foo.com", provider_server)
        resolver.attach_server("dns.provider.com", client_server)
        result = resolver.resolve("client.com", day=1)
        assert result.ok
        assert result.answer == ["192.0.2.99"]

    def test_source_ip_propagates_through_recursion(self, db):
        db.set_delegation(0, "provider.com", ["ns1.foo.com"])
        db.set_delegation(0, "client.com", ["dns.provider.com"])
        observer = SilentBehavior()
        resolver = IterativeResolver(db)
        resolver.attach_server("ns1.foo.com", observer)
        resolver.resolve("client.com", day=1, source_ip="10.9.8.7")
        assert observer.query_log[0].source_ip == "10.9.8.7"

    def test_external_ns_reachable_only_with_server(self, db):
        db.set_delegation(0, "client.com", ["ns1.hijacker.nl"])
        resolver = IterativeResolver(db)
        assert resolver.resolve("client.com", day=1).status is \
            ResolutionStatus.UNRESOLVABLE_NS
        server = AnsweringBehavior()
        server.add_record("client.com", RRType.A, "198.51.100.1")
        resolver.attach_server("ns1.hijacker.nl", server)
        assert resolver.resolve("client.com", day=1).ok

    def test_loop_protection(self, db):
        """Self-referential glueless delegation terminates."""
        db.set_delegation(0, "loop.com", ["ns1.loop.com"])
        resolver = IterativeResolver(db)
        result = resolver.resolve("loop.com", day=1)
        assert result.status in (
            ResolutionStatus.UNRESOLVABLE_NS, ResolutionStatus.ERROR
        )

    def test_trace_is_informative(self, resolver):
        result = resolver.resolve("bar.com", day=1)
        assert any("TLD referral" in line for line in result.trace)

    def test_detach_server(self, db, resolver):
        resolver.detach_server("ns1.foo.com")
        assert resolver.server_for("ns1.foo.com") is None
        assert resolver.resolve("bar.com", day=1).status is ResolutionStatus.LAME


class TestWireCapture:
    @pytest.fixture()
    def capturing_resolver(self, db):
        from repro.dnscore.records import RRType
        resolver = IterativeResolver(db, capture_wire=True)
        server = AnsweringBehavior()
        server.add_record("bar.com", RRType.A, "192.0.2.80")
        resolver.attach_server("ns1.foo.com", server)
        return resolver

    def test_exchanges_recorded(self, capturing_resolver):
        capturing_resolver.resolve("bar.com", day=1)
        assert len(capturing_resolver.wire_log) == 1
        exchange = capturing_resolver.wire_log[0]
        assert exchange.server == "ns1.foo.com"
        assert exchange.query_size > 12
        assert exchange.response_size > exchange.query_size

    def test_no_response_recorded_as_none(self, db):
        resolver = IterativeResolver(db, capture_wire=True)
        resolver.attach_server("ns1.foo.com", SilentBehavior())
        resolver.resolve("bar.com", day=1)
        assert resolver.wire_log[0].response is None
        assert resolver.wire_log[0].response_size == 0

    def test_wire_decodes_to_original_question(self, capturing_resolver):
        from repro.dnscore.wire import decode_message
        capturing_resolver.resolve("bar.com", day=1)
        decoded = decode_message(capturing_resolver.wire_log[0].query)
        assert decoded.questions[0].qname == "bar.com"

    def test_message_ids_increment(self, capturing_resolver):
        capturing_resolver.resolve("bar.com", day=1)
        capturing_resolver.resolve("bar.com", day=1)
        from repro.dnscore.wire import decode_message
        ids = [
            decode_message(e.query).message_id
            for e in capturing_resolver.wire_log
        ]
        assert ids == sorted(set(ids))

    def test_capture_off_by_default(self, resolver):
        resolver.resolve("bar.com", day=1)
        assert resolver.wire_log == []
