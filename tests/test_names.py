"""Unit and property tests for domain-name handling."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.errors import NameError_
from repro.dnscore.names import (
    Name,
    common_suffix_depth,
    is_valid,
    normalize,
    sorted_names,
)

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10)
name_strategy = st.lists(label, min_size=1, max_size=5).map(".".join)


class TestNormalization:
    def test_lowercases(self):
        assert Name("NS1.Example.COM").text == "ns1.example.com"

    def test_strips_trailing_dot(self):
        assert Name("example.com.").text == "example.com"

    def test_strips_whitespace(self):
        assert Name("  example.com ").text == "example.com"

    def test_labels_split(self):
        assert Name("a.b.c").labels == ("a", "b", "c")

    def test_tld(self):
        assert Name("ns1.example.com").tld == "com"

    @given(name_strategy)
    def test_idempotent(self, raw):
        assert Name(Name(raw).text).text == Name(raw).text

    def test_name_from_name_is_identity(self):
        name = Name("example.com")
        assert Name(name) == name


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(NameError_):
            Name("")

    def test_rejects_empty_label(self):
        with pytest.raises(NameError_):
            Name("a..b")

    def test_rejects_long_label(self):
        with pytest.raises(NameError_):
            Name("a" * 64 + ".com")

    def test_accepts_63_char_label(self):
        assert Name("a" * 63 + ".com")

    def test_rejects_overlong_name(self):
        with pytest.raises(NameError_):
            Name(".".join(["a" * 60] * 5))

    def test_rejects_leading_hyphen_label(self):
        with pytest.raises(NameError_):
            Name("-bad.com")

    def test_rejects_trailing_hyphen_label(self):
        with pytest.raises(NameError_):
            Name("bad-.com")

    def test_interior_hyphen_ok(self):
        assert Name("drop-this.com").text == "drop-this.com"

    def test_underscore_allowed_by_default(self):
        assert Name("_dmarc.example.com")

    def test_underscore_rejected_in_strict_mode(self):
        with pytest.raises(NameError_):
            Name("_dmarc.example.com", strict=True)

    def test_is_valid_helper(self):
        assert is_valid("example.com")
        assert not is_valid("")
        assert not is_valid("a..b")


class TestRelations:
    def test_parent(self):
        assert Name("ns1.example.com").parent() == Name("example.com")

    def test_parent_of_tld_raises(self):
        with pytest.raises(NameError_):
            Name("com").parent()

    def test_is_subdomain_of_self(self):
        assert Name("example.com").is_subdomain_of("example.com")

    def test_is_subdomain_of_parent(self):
        assert Name("a.example.com").is_subdomain_of("example.com")

    def test_not_subdomain_of_sibling(self):
        assert not Name("a.example.com").is_subdomain_of("other.com")

    def test_label_boundary_respected(self):
        assert not Name("notexample.com").is_subdomain_of("example.com")

    def test_strict_subdomain_excludes_self(self):
        assert not Name("example.com").is_strict_subdomain_of("example.com")
        assert Name("a.example.com").is_strict_subdomain_of("example.com")

    def test_relativize(self):
        assert Name("www.example.com").relativize("example.com") == "www"

    def test_relativize_self_is_at(self):
        assert Name("example.com").relativize("example.com") == "@"

    def test_relativize_outside_raises(self):
        with pytest.raises(NameError_):
            Name("other.org").relativize("example.com")

    def test_with_tld(self):
        assert Name("ns1.foo.com").with_tld("biz").text == "ns1.foo.biz"

    def test_common_suffix_depth(self):
        assert common_suffix_depth("ns1.foo.com", "ns2.foo.com") == 2
        assert common_suffix_depth("a.com", "b.org") == 0


class TestEqualityAndOrdering:
    def test_equal_to_string(self):
        assert Name("Example.COM") == "example.com"

    def test_hash_matches_text(self):
        assert hash(Name("example.com")) == hash("example.com")

    def test_usable_as_dict_key(self):
        table = {Name("example.com"): 1}
        assert table[Name("EXAMPLE.com")] == 1

    def test_sorted_names_canonical_order(self):
        result = [n.text for n in sorted_names(["b.com", "a.org", "a.com"])]
        assert result == ["a.com", "b.com", "a.org"]

    def test_len_is_label_count(self):
        assert len(Name("a.b.c")) == 3

    def test_repr_contains_text(self):
        assert "example.com" in repr(Name("example.com"))


class TestNormalizeCache:
    def test_normalize_matches_name(self):
        assert normalize("FOO.Com") == "foo.com"

    @given(name_strategy)
    def test_normalize_agrees_with_name(self, raw):
        assert normalize(raw) == Name(raw).text
