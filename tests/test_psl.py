"""Tests for the public-suffix model and registered-domain extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.errors import NameError_
from repro.dnscore.psl import PublicSuffixList, default_psl


@pytest.fixture(scope="module")
def psl():
    return default_psl()


class TestRegisteredDomain:
    def test_simple(self, psl):
        assert psl.registered_domain("ns1.example.com") == "example.com"

    def test_deep_subdomain(self, psl):
        assert psl.registered_domain("a.b.c.example.com") == "example.com"

    def test_bare_registered_domain(self, psl):
        assert psl.registered_domain("example.com") == "example.com"

    def test_tld_has_no_registered_domain(self, psl):
        assert psl.registered_domain("com") is None

    def test_multi_label_suffix(self, psl):
        assert psl.registered_domain("a.b.co.uk") == "b.co.uk"

    def test_multi_label_suffix_itself(self, psl):
        assert psl.registered_domain("co.uk") is None

    def test_unknown_tld_default_rule(self, psl):
        # PSL default: unlisted TLDs are one-label public suffixes.
        assert psl.registered_domain("foo.bar.unknowntld") == "bar.unknowntld"

    def test_wildcard_rule(self, psl):
        assert psl.registered_domain("a.b.ck") is None or True  # see below
        # *.ck makes b.ck a public suffix, so the registrable part is a.b.ck.
        assert psl.registered_domain("x.a.b.ck") == "a.b.ck"

    def test_exception_rule(self, psl):
        # !www.ck: www.ck is registrable even though *.ck is wildcarded.
        assert psl.registered_domain("www.ck") == "www.ck"

    def test_arpa_names(self, psl):
        assert psl.registered_domain("x.empty.as112.arpa") == "as112.arpa"


class TestSuffixQueries:
    def test_public_suffix_simple(self, psl):
        assert psl.public_suffix("ns1.example.com") == "com"

    def test_public_suffix_multi(self, psl):
        assert psl.public_suffix("a.b.co.uk") == "co.uk"

    def test_is_public_suffix(self, psl):
        assert psl.is_public_suffix("com")
        assert psl.is_public_suffix("co.uk")
        assert not psl.is_public_suffix("example.com")

    def test_sld(self, psl):
        assert psl.sld("ns1.foo.com") == "foo"

    def test_sld_of_suffix_is_none(self, psl):
        assert psl.sld("com") is None

    def test_subdomain_part(self, psl):
        assert psl.subdomain_part("ns1.foo.com") == "ns1"

    def test_subdomain_part_deep(self, psl):
        assert psl.subdomain_part("a.b.foo.com") == "a.b"

    def test_subdomain_part_none_for_registered(self, psl):
        assert psl.subdomain_part("foo.com") is None


class TestRuleManagement:
    def test_custom_rules(self):
        psl = PublicSuffixList(rules=["test"])
        assert psl.registered_domain("foo.bar.test") == "bar.test"

    def test_add_rule_after_construction(self):
        psl = PublicSuffixList(rules=["test"])
        psl.add_rule("sub.test")
        assert psl.registered_domain("foo.bar.sub.test") == "bar.sub.test"

    def test_empty_rule_rejected(self):
        psl = PublicSuffixList(rules=["test"])
        with pytest.raises(NameError_):
            psl.add_rule("  ")

    def test_longest_rule_wins(self):
        psl = PublicSuffixList(rules=["uk", "co.uk"])
        assert psl.registered_domain("x.co.uk") == "x.co.uk"
        assert psl.registered_domain("x.other.uk") == "other.uk"


label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)


class TestProperties:
    @given(st.lists(label, min_size=2, max_size=5))
    def test_registered_domain_is_suffix_of_name(self, labels):
        name = ".".join(labels)
        registered = default_psl().registered_domain(name)
        if registered is not None:
            assert name.endswith(registered)

    @given(st.lists(label, min_size=3, max_size=5))
    def test_registered_domain_idempotent(self, labels):
        psl = default_psl()
        name = ".".join(labels)
        registered = psl.registered_domain(name)
        if registered is not None:
            assert psl.registered_domain(registered) == registered

    @given(st.lists(label, min_size=2, max_size=5))
    def test_suffix_plus_sld_structure(self, labels):
        psl = default_psl()
        name = ".".join(labels)
        registered = psl.registered_domain(name)
        if registered is not None:
            suffix = psl.public_suffix(name)
            sld = psl.sld(name)
            assert registered == f"{sld}.{suffix}"
