"""Tests for the shared analysis core and per-artifact modules."""

import pytest

from repro import simtime
from repro.analysis import actors, desirability, duration, exposure, hijacks, timing
from repro.analysis.remediation import population_snapshot, table5, table6
from repro.analysis.study import StudyAnalysis, StudyConfig
from repro.analysis.tables import (
    HijackSummary,
    collision_count,
    display_registrar,
    partial_exposure_summary,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def study(tiny_bundle):
    return tiny_bundle.study


@pytest.fixture(scope="module")
def world(tiny_bundle):
    return tiny_bundle.world


class TestStudyCore:
    def test_views_built_for_all_sacrificial(self, study, tiny_bundle):
        non_excluded = [
            s for s in tiny_bundle.pipeline.sacrificial
            if s.original_domain != "registrar-servers.com"
        ]
        assert len(study.nameservers) == len(non_excluded)

    def test_namecheap_excluded(self, study, world):
        accidental = {r.new_name for r in world.log.renames if r.accidental}
        assert accidental
        for name in sorted(accidental):
            assert name not in study.nameservers
        assert len(study.excluded) == len(accidental)

    def test_groups_share_registered_domain(self, study):
        for registered, group in study.groups.items():
            assert group.registered_domain == registered
            for view in group.nameservers:
                assert view.info.registered_domain == registered

    def test_hijack_epochs_match_ground_truth(self, study, world):
        # A sacrificial domain may be hijacked more than once (registered,
        # dropped, re-registered) — compare against the earliest event.
        first_by_domain: dict[str, int] = {}
        for hijack in world.log.hijacks:
            first_by_domain.setdefault(hijack.domain, hijack.day)
        for registered, group in study.groups.items():
            truth_day = first_by_domain.get(registered)
            if truth_day is not None and truth_day < study.config.study_end:
                if group.hijackable:
                    assert group.hijacked, registered
                    assert group.first_hijack_day == truth_day

    def test_no_phantom_hijacks(self, study, world):
        truth_domains = set(world.log.hijacks_by_domain())
        for registered, group in study.groups.items():
            if group.hijacked:
                assert registered in truth_domains

    def test_exposures_only_for_hijackable(self, study):
        for domain, exp in study.exposures.items():
            assert exp.exposure_intervals
            for view, _interval in exp.delegations:
                assert view.info.hijackable

    def test_hijacked_intervals_subset_of_exposure(self, study):
        horizon = study.config.study_end
        for exp in study.exposures.values():
            assert exp.hijacked_days(horizon) <= exp.exposure_days(horizon)

    def test_hijacked_domains_subset(self, study):
        assert study.hijacked_domains() <= study.hijackable_domains()

    def test_study_window_filter(self, tiny_bundle):
        narrow = StudyAnalysis(
            tiny_bundle.pipeline,
            tiny_bundle.world.zonedb,
            tiny_bundle.world.whois,
            StudyConfig(study_end=365),
        )
        wide = tiny_bundle.study
        assert len(narrow.study_nameservers()) < len(wide.study_nameservers())


class TestTables(object):
    def test_table1_rows_are_sinks(self, study):
        rows, total = table1(study)
        assert total.nameservers == sum(r.nameservers for r in rows)
        for row in rows:
            assert row.idiom not in (
                "PLEASEDROPTHISHOST", "DROPTHISHOST", "XXXXX.{BIZ, COM}"
            )

    def test_table2_rows_are_hijackable(self, study):
        rows, _total = table2(study)
        idioms = {r.idiom for r in rows}
        assert "PLEASEDROPTHISHOST" in idioms or "DROPTHISHOST" in idioms
        assert "DUMMYNS.COM" not in idioms

    def test_tables_exclude_post_remediation(self, study):
        rows1, _t1 = table1(study)
        rows2, _t2 = table2(study)
        for row in rows1 + rows2:
            assert "AS112" not in row.idiom
            assert row.idiom != "DELETE-REGISTRATION.COM"

    def test_table3_fractions(self, study):
        summary = table3(study)
        assert 0 < summary.hijacked_ns <= summary.hijackable_ns
        assert 0 < summary.hijacked_domains <= summary.hijackable_domains
        assert summary.ns_fraction == pytest.approx(
            summary.hijacked_ns / summary.hijackable_ns
        )

    def test_table3_empty_safe(self):
        empty = HijackSummary(0, 0, 0, 0)
        assert empty.ns_fraction == 0.0
        assert empty.domain_fraction == 0.0

    def test_display_registrar(self):
        assert display_registrar("godaddy") == "GoDaddy"
        assert display_registrar(None) == "(unattributed)"
        assert display_registrar("unknown-x") == "unknown-x"

    def test_collision_count_zero_for_tiny_or_more(self, study):
        assert collision_count(study) >= 0

    def test_partial_exposure_counts(self, default_bundle):
        day = default_bundle.study.config.study_end - 1
        partial, hijacked = partial_exposure_summary(default_bundle.study, day)
        assert partial > 0
        assert 0 <= hijacked <= partial


class TestSeries:
    def test_fig3_counts_domains_once(self, study):
        series = exposure.new_hijackable_per_month(study)
        assert sum(series.values()) == len(
            [e for e in study.exposures.values()
             if e.first_exposed < study.config.study_end]
        )

    def test_fig3_spans_study_window(self, study):
        series = exposure.new_hijackable_per_month(study)
        assert list(series)[0] == "2011-04"
        assert list(series)[-1].startswith("2020")

    def test_fig4_total_matches_hijacked_domains(self, study):
        series = hijacks.new_hijacked_per_month(study)
        assert sum(series.values()) == len(study.hijacked_domains())

    def test_trend_slope_sign(self):
        declining = {f"m{i}": 100 - i for i in range(50)}
        rising = {f"m{i}": i for i in range(50)}
        assert exposure.trend_slope(declining) < 0
        assert exposure.trend_slope(rising) > 0

    def test_halves_ratio(self):
        flat = {f"m{i}": 10 for i in range(10)}
        assert exposure.halves_ratio(flat) == pytest.approx(1.0)

    def test_burstiness_of_constant_is_zero(self):
        assert hijacks.burstiness({"a": 5, "b": 5}) == 0.0

    def test_burstiness_of_spike(self):
        spiky = {f"m{i}": (100 if i == 3 else 0) for i in range(20)}
        assert hijacks.burstiness(spiky) > 2.0

    def test_active_months_fraction(self):
        series = {"a": 1, "b": 0, "c": 2, "d": 0}
        assert hijacks.active_months_fraction(series) == 0.5


class TestDesirability:
    def test_points_cover_hijackable(self, study):
        points = desirability.value_points(study)
        assert len(points) == len(study.hijackable_nameservers())

    def test_points_sorted_by_value(self, study):
        points = desirability.value_points(study)
        values = [p.hijack_value_days for p in points]
        assert values == sorted(values, reverse=True)

    def test_cap(self):
        point = desirability.ValuePoint("x", 10, 5000, False)
        assert point.capped_domains() == 1000

    def test_selectivity_top_decile_dominates(self, default_bundle):
        points = desirability.value_points(default_bundle.study)
        summary = desirability.selectivity_summary(points)
        assert summary["top_decile_hijacked_fraction"] > \
            summary["overall_hijacked_fraction"] * 2
        assert summary["mean_value_hijacked"] > summary["mean_value_not_hijacked"]

    def test_selectivity_empty(self):
        summary = desirability.selectivity_summary([])
        assert summary["overall_hijacked_fraction"] == 0.0


class TestTiming:
    def test_cdf_helpers(self):
        samples = [1, 2, 2, 10]
        assert timing.cdf_fraction_at(samples, 2) == 0.75
        assert timing.cdf_fraction_at(samples, 0) == 0.0
        assert timing.cdf_fraction_at([], 5) == 0.0
        assert timing.percentile(samples, 0.5) == 2

    def test_delays_nonnegative_sorted(self, study):
        for delays in (timing.nameserver_delays(study), timing.domain_delays(study)):
            assert all(d >= 0 for d in delays)
            assert delays == sorted(delays)

    def test_delay_counts_match(self, study):
        assert len(timing.nameserver_delays(study)) == len(
            study.hijacked_nameservers()
        )
        assert len(timing.domain_delays(study)) == len(study.hijacked_domains())

    def test_summary_keys(self, study):
        summary = timing.timing_summary(study)
        assert set(summary) >= {
            "ns_within_7_days", "domains_within_5_days", "domains_within_30_days"
        }


class TestDuration:
    def test_partition_is_complete(self, study):
        never, hijacked = duration.hijackable_durations(study)
        horizon = study.config.study_end
        in_window = [
            e for e in study.exposures.values()
            if e.first_exposed < horizon and e.exposure_days(horizon) > 0
        ]
        assert len(never) + len(hijacked) == len(in_window)

    def test_hijacked_durations_positive(self, study):
        assert all(d > 0 for d in duration.hijacked_durations(study))

    def test_summary_fractions_in_range(self, study):
        summary = duration.duration_summary(study)
        for value in summary.values():
            assert 0.0 <= value <= 1.0


class TestActors:
    def test_rows_ranked_by_domains(self, study):
        rows = actors.hijacker_rows(study, top=None)
        domains = [r.domain_count for r in rows]
        assert domains == sorted(domains, reverse=True)

    def test_top_limits(self, study):
        assert len(actors.hijacker_rows(study, top=3)) <= 3

    def test_known_actor_domains_surface(self, default_bundle):
        rows = actors.hijacker_rows(default_bundle.study, top=5)
        names = {r.controlling_domain for r in rows}
        assert "mpower.nl" in names


class TestRemediation:
    def test_snapshot_consistency(self, study):
        snap = population_snapshot(study, simtime.to_day(simtime.NOTIFICATION_DATE))
        assert snap.hijacked_ns <= snap.vulnerable_ns
        assert snap.hijacked_domains <= snap.vulnerable_domains

    def test_table5_baseline_windows(self, study):
        delta = table5(study)
        assert delta.before.day - delta.baseline_before.day == simtime.DAYS_PER_YEAR
        assert delta.before.label == "Sep 2020"
        assert delta.after.label == "Feb 2021"

    def test_table5_population_declines(self, default_bundle):
        delta = table5(default_bundle.study)
        assert delta.ns_delta < 0
        assert delta.domain_delta < 0

    def test_table6_rows_post_remediation_only(self, study):
        rows, total = table6(study)
        assert total.nameservers == sum(r.nameservers for r in rows)
        for row in rows:
            assert row.idiom in (
                "EMPTY.AS112.ARPA", "NOTAPLACETO.BE", "DELETE-REGISTRATION.COM"
            )

    def test_table6_nonzero_on_default(self, default_bundle):
        rows, total = table6(default_bundle.study)
        assert total.nameservers > 0
        assert total.domains > 0
        registrars = {r.registrar for r in rows}
        assert "GoDaddy" in registrars


class TestNature:
    def test_classification_partitions(self, default_bundle):
        from repro.analysis.nature import classify_exposure
        study = default_bundle.study
        day = study.config.study_end - 1
        nature = classify_exposure(study, day)
        assert nature.total_exposed == \
            nature.fully_exposed + nature.partially_exposed
        assert nature.partially_exposed_hijacked <= nature.partially_exposed

    def test_partial_matches_tables_helper(self, default_bundle):
        from repro.analysis.nature import classify_exposure
        from repro.analysis.tables import partial_exposure_summary
        study = default_bundle.study
        day = study.config.study_end - 1
        nature = classify_exposure(study, day)
        partial, hijacked = partial_exposure_summary(study, day)
        assert nature.partially_exposed == partial
        assert nature.partially_exposed_hijacked == hijacked

    def test_authority_tlds_present(self, default_bundle):
        from repro.analysis.nature import classify_exposure
        study = default_bundle.study
        day = study.config.study_end - 1
        nature = classify_exposure(study, day)
        assert nature.authority_tld_exposed > 0

    def test_nature_rows_render(self, default_bundle):
        from repro.analysis.nature import classify_exposure, nature_rows
        study = default_bundle.study
        rows = nature_rows(classify_exposure(study, study.config.study_end - 1))
        assert len(rows) == 6


class TestPopularity:
    @pytest.fixture(scope="class")
    def top_list(self, default_bundle):
        from repro.ecosystem.popularity import build_top_list
        from repro.ecosystem.population import SAFE_PROVIDERS
        safe = {
            f"ns{i}.{provider}" for provider, _o in SAFE_PROVIDERS for i in (1, 2)
        }
        study = default_bundle.study
        return build_top_list(
            default_bundle.world.zonedb, safe,
            day=study.config.study_end - 1, size=1000, seed=3,
        )

    def test_list_size(self, top_list):
        assert 900 <= len(top_list) <= 1000

    def test_rank_lookup(self, top_list):
        first = top_list.ranked[0]
        assert top_list.rank_of(first) == 1
        assert top_list.rank_of("never-listed.example") is None

    def test_exposed_domains_are_rare_on_list(self, default_bundle, top_list):
        """The paper's finding: ~500 of 1M listed domains hijackable."""
        from repro.ecosystem.popularity import hijackable_on_list
        overlap = hijackable_on_list(
            top_list, default_bundle.study.hijackable_domains()
        )
        # Rarity is the claim; whether the handful of non-professional
        # slots hit ever-hijackable domains is sampling luck at this scale.
        assert len(overlap) < len(top_list) * 0.02

    def test_non_professional_slice_is_bounded(self, default_bundle, top_list):
        from repro.ecosystem.population import SAFE_PROVIDERS
        safe = {
            f"ns{i}.{p}" for p, _o in SAFE_PROVIDERS for i in (1, 2)
        }
        zonedb = default_bundle.world.zonedb
        non_professional = [
            domain for domain in top_list.ranked
            if {r.ns for r in zonedb.domain_records(domain)} - safe
        ]
        assert len(non_professional) <= max(2, int(len(top_list) * 0.005))


class TestRemediationAttribution:
    def test_rerename_dominates(self, default_bundle):
        """§7.1: the bulk of NS remediation is GoDaddy's re-renames."""
        from repro.analysis.remediation import remediation_attribution
        attribution = remediation_attribution(default_bundle.study)
        assert attribution.remediated_ns > 0
        # Paper: ~70% of remediated NS were GoDaddy re-renames; the
        # simulated organic churn is relatively thicker, so the band is
        # wider — but re-renames must be a major cause and GoDaddy the
        # dominant attributed registrar.
        assert attribution.rerename_fraction() > 0.25
        by_registrar = attribution.rerename_ns_by_registrar
        assert max(by_registrar, key=by_registrar.get) == "godaddy"

    def test_counts_partition(self, default_bundle):
        from repro.analysis.remediation import remediation_attribution
        attribution = remediation_attribution(default_bundle.study)
        total = sum(attribution.rerename_ns_by_registrar.values()) \
            + attribution.organic_ns
        assert total == attribution.remediated_ns
