"""Integration tests for the world engine (ground-truth invariants)."""

import pytest

from repro import simtime
from repro.dnscore.names import Name
from repro.detection.repository_check import DEFAULT_TLD_REPOSITORIES


@pytest.fixture(scope="module")
def world(tiny_bundle):
    return tiny_bundle.world


class TestRenameGroundTruth:
    def test_renames_happened(self, world):
        assert len(world.log.renames) > 50

    def test_rename_targets_leave_source_namespace(self, world):
        """Every sacrificial rename changes the registered domain."""
        for record in world.log.renames:
            assert Name(record.old_name).tld != Name(record.new_name).tld or \
                record.new_name.split(".", 1)[1] != record.old_name.split(".", 1)[1]

    def test_renamed_hosts_have_linked_domains(self, world):
        for record in world.log.renames:
            if not record.remediation:
                assert record.linked_domains

    def test_linked_domains_same_repository(self, world):
        """EPP scoping: a rename only rewrites same-repository domains."""
        for record in world.log.renames:
            repos = {
                DEFAULT_TLD_REPOSITORIES[Name(d).tld]
                for d in record.linked_domains
            }
            assert len(repos) == 1

    def test_rename_day_within_timeline(self, world):
        for record in world.log.renames:
            assert 0 <= record.day < world.config.end_day

    def test_hijackable_flag_matches_idiom(self, world):
        hijackable_ids = {
            "PLEASEDROPTHISHOST", "DROPTHISHOST", "DELETED-DROP",
            "123.BIZ", "XXXXX.BIZ",
        }
        for record in world.log.renames:
            assert record.hijackable == (record.idiom_id in hijackable_ids)

    def test_rewritten_delegation_visible_in_zonedb(self, world):
        checked = 0
        for record in world.log.renames[:50]:
            for domain in record.linked_domains:
                if world.zonedb.first_seen(record.new_name) is not None:
                    assert record.new_name in {
                        r.ns for r in world.zonedb.domain_records(domain)
                    }
                    checked += 1
        assert checked > 0

    def test_idiom_switch_respected(self, world):
        """GoDaddy renames before/after March 2015 use different idioms."""
        switch = simtime.to_day(simtime.to_date(0).replace(year=2015, month=3))
        godaddy = [
            r for r in world.log.renames
            if r.registrar == "godaddy" and not r.remediation
        ]
        for record in godaddy:
            if record.day < switch:
                assert record.idiom_id == "PLEASEDROPTHISHOST"
            elif record.day < world.config.notification_day:
                assert record.idiom_id == "DROPTHISHOST"


class TestHijackGroundTruth:
    def test_hijacks_happened(self, world):
        assert world.log.hijacks

    def test_hijack_day_after_group_creation(self, world):
        for hijack in world.log.hijacks:
            if hijack.hijacker == "sinksquatter":
                continue
            group = world.groups[hijack.domain]
            assert hijack.day > group.created_day

    def test_hijack_registered_in_whois(self, world):
        for hijack in world.log.hijacks:
            assert world.whois.ever_registered(hijack.domain)

    def test_hijacked_domain_value_positive(self, world):
        non_sink = [
            h for h in world.log.hijacks if h.hijacker != "sinksquatter"
        ]
        assert all(h.value_at_registration >= 1 for h in non_sink)

    def test_accidental_renames_never_offered(self, world):
        from repro.dnscore.psl import default_psl
        psl = default_psl()
        accidental_groups = set()
        for record in world.log.renames:
            if record.accidental:
                accidental_groups.add(psl.registered_domain(record.new_name))
        hijacked = {h.domain for h in world.log.hijacks}
        assert not (accidental_groups & hijacked)


class TestSinkLifecycle:
    def test_sinks_registered(self, world):
        registered = {
            e.domain for e in world.log.sink_events if e.action == "registered"
        }
        assert "dummyns.com" in registered
        assert "lamedelegation.org" in registered

    def test_dummyns_abandoned_and_seized(self, world):
        actions = {
            e.action for e in world.log.sink_events if e.domain == "dummyns.com"
        }
        assert "abandoned" in actions
        assert "seized" in actions

    def test_seizure_recorded_as_hijack(self, world):
        assert any(
            h.domain == "dummyns.com" and h.hijacker == "sinksquatter"
            for h in world.log.hijacks
        )

    def test_sink_whois_shows_reregistration(self, world):
        history = world.whois.history("dummyns.com")
        assert len(history) == 2
        assert history[0].registrar == "internetbs"
        assert history[1].registrar == "bulkreg"


class TestNamecheapEvent:
    def test_accidental_renames_logged(self, world):
        accidental = [r for r in world.log.renames if r.accidental]
        assert len(accidental) == world.config.namecheap.host_count

    def test_mass_exposure_then_recovery(self, world):
        nc = world.plan.namecheap
        accidental = [r for r in world.log.renames if r.accidental]
        exposed = set()
        for record in accidental:
            exposed.update(record.linked_domains)
        assert len(exposed) > world.config.namecheap.client_count * 0.9
        # Three days later most have fixed their delegation.
        sacrificial = {r.new_name for r in accidental}
        still = sum(
            1 for domain in exposed
            if world.zonedb.nameservers_of(domain, nc.day + 4) & sacrificial
        )
        assert still < len(exposed) * 0.1

    def test_ns_domain_reregistered(self, world):
        nc = world.plan.namecheap
        history = world.whois.history(nc.ns_domain)
        assert [h.registrar for h in history] == ["enom", "namecheap"]


class TestRemediation:
    def test_notification_fixes_logged(self, default_bundle):
        # Eligible GoDaddy re-rename targets (sponsored + still delegated
        # + unregistered) are not guaranteed to exist at 1:1000 scale, so
        # this asserts on the full-scale world.
        reasons = {f.reason for f in default_bundle.world.log.fixes}
        assert "notification" in reasons

    def test_organic_fixes_logged(self, world):
        assert "organic" in {f.reason for f in world.log.fixes}

    def test_remediation_renames_non_hijackable(self, world):
        for record in world.log.renames:
            if record.remediation:
                assert not record.hijackable
                assert record.day >= world.config.notification_day

    def test_post_notification_idioms_in_use(self, world):
        late_ids = {
            r.idiom_id for r in world.log.renames
            if r.day > world.config.notification_day + 90 and not r.remediation
        }
        assert "EMPTY.AS112.ARPA" in late_ids


class TestDeterminism:
    def test_same_seed_same_world(self):
        from repro.ecosystem.config import tiny_scenario
        from repro.ecosystem.world import World
        a = World(tiny_scenario(seed=5)).run()
        b = World(tiny_scenario(seed=5)).run()
        assert [r.new_name for r in a.log.renames] == [
            r.new_name for r in b.log.renames
        ]
        assert [h.domain for h in a.log.hijacks] == [
            h.domain for h in b.log.hijacks
        ]

    def test_no_machinery_errors_in_tiny_world(self, world):
        # Every hoster whose purge fell inside the timeline must have
        # completed its deletion cleanly; failures would show up as
        # domains left behind in repositories.
        from repro.ecosystem.population import PURGE_DELAY
        for hoster in world.plan.hosters:
            if hoster.death_day + PURGE_DELAY >= world.config.end_day:
                continue  # still in the grace pipeline at data end
            registry = world.roster.registry_for(hoster.domain)
            assert not registry.repository.domain_exists(hoster.domain), hoster.domain
