"""Tests for the command-line interface and WHOIS serialization."""

import json

import pytest

from repro.cli import build_parser, main
from repro.whois.archive import WhoisArchive


class TestWhoisSerialization:
    @pytest.fixture()
    def archive(self):
        whois = WhoisArchive()
        whois.record_registration(
            "foo.com", "godaddy", day=0, period_years=2, registrant="Alice"
        )
        whois.record_deletion("foo.com", day=100)
        whois.record_registration("foo.com", "enom", day=150)
        whois.record_registration("bar.biz", "bulkreg", day=7)
        return whois

    def test_json_lines_are_valid(self, archive):
        lines = list(archive.to_json_lines())
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_round_trip(self, archive, tmp_path):
        path = tmp_path / "whois.jsonl"
        assert archive.dump(path) == 3
        restored = WhoisArchive.load(path)
        assert restored.registrar_at("foo.com", 50) == "godaddy"
        assert restored.registrar_at("foo.com", 200) == "enom"
        assert restored.registrar_at("bar.biz", 10) == "bulkreg"
        assert restored.current("foo.com", 120) is None

    def test_last_registrar_before(self, archive):
        assert archive.last_registrar_before("foo.com", 120) == "godaddy"
        assert archive.last_registrar_before("foo.com", 500) == "enom"
        assert archive.last_registrar_before("ghost.com", 10) is None


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["report"],
            ["simulate", "--out", "x"],
            ["detect", "--archive", "x"],
            ["experiment"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.seed == 2021
        assert args.scale == 0.25


class TestSimulateDetectRoundTrip:
    @pytest.fixture(scope="class")
    def simulated(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("simout")
        code = main([
            "simulate", "--out", str(out),
            "--scale", "0.1", "--every", "60",
        ])
        assert code == 0
        return out

    def test_archive_written(self, simulated):
        assert (simulated / "whois.jsonl").exists()
        zones = list((simulated / "zones").rglob("*.zone"))
        assert len(zones) > 100

    def test_detect_from_disk(self, simulated, capsys):
        code = main([
            "detect",
            "--archive", str(simulated / "zones"),
            "--whois", str(simulated / "whois.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Detection pipeline funnel" in out
        assert "Table 3" in out
        assert "PLEASEDROPTHISHOST" in out

    def test_detect_attributes_registrars_from_whois(self, simulated, capsys):
        main([
            "detect",
            "--archive", str(simulated / "zones"),
            "--whois", str(simulated / "whois.jsonl"),
        ])
        out = capsys.readouterr().out
        table2 = out.split("Table 2")[1].split("Table 3")[0]
        assert "(unattributed)" not in table2

    def test_detect_empty_archive_fails(self, tmp_path, capsys):
        code = main(["detect", "--archive", str(tmp_path)])
        assert code == 1

    def test_detect_requires_a_source(self, capsys):
        assert main(["detect"]) == 2
        assert "--dataset or --archive" in capsys.readouterr().err

    def test_dataset_written_with_manifest(self, simulated):
        from repro.lint.scenario_engine import lint_scenario_data

        dataset = simulated / "dataset.sqlite"
        manifest = simulated / "dataset.sqlite.manifest.json"
        assert dataset.exists() and manifest.exists()
        doc = json.loads(manifest.read_text())
        assert doc["format"] == "riskybiz-dataset/1"
        assert len(doc["scenario_digest"]) == 64
        assert lint_scenario_data(doc, str(manifest)) == []

    def test_detect_from_dataset_sharded_and_cached(
        self, simulated, tmp_path, capsys
    ):
        """detect over the simulate-written SQLite dataset, no shared
        in-process world: sharded run, pipeline artifact cached."""
        cache_dir = tmp_path / "cache"
        argv = [
            "detect",
            "--dataset", str(simulated / "dataset.sqlite"),
            "--whois", str(simulated / "whois.jsonl"),
            "--shards", "3",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Detection pipeline funnel" in captured.out
        assert "scenario digest" in captured.err
        cached = sorted(p.name for p in cache_dir.glob("pipeline-*"))
        assert len(cached) == 2  # artifact pickle + manifest sidecar

        # Second invocation: served from the on-disk artifact cache,
        # identical report.
        assert main(argv) == 0
        assert capsys.readouterr().out == captured.out


class TestExperimentCommand:
    def test_experiment_runs(self, capsys):
        code = main(["experiment", "--scale", "0.1", "--seed", "31"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hijack demonstrated" in out


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        code = main(["export", "--out", str(tmp_path), "--scale", "0.1"])
        assert code == 0
        written = {p.name for p in tmp_path.glob("*.csv")}
        assert "figure5_value_scatter.csv" in written
        assert len(written) == 6


class TestScenarioConfig:
    def test_scenario_dump_and_reuse(self, tmp_path, capsys):
        config_path = tmp_path / "scenario.json"
        assert main([
            "scenario", "--out", str(config_path), "--scale", "0.1", "--seed", "5",
        ]) == 0
        assert config_path.exists()
        out_dir = tmp_path / "sim"
        assert main([
            "simulate", "--out", str(out_dir), "--config", str(config_path),
            "--every", "90",
        ]) == 0
        assert (out_dir / "whois.jsonl").exists()

    def test_round_trip_reproduces_world(self, tmp_path):
        from repro.ecosystem.config import default_scenario
        from repro.ecosystem.scenario_io import load_scenario, save_scenario
        from repro.ecosystem.world import World
        config = default_scenario(seed=12).scaled(0.1)
        path = save_scenario(config, tmp_path / "s.json")
        restored = load_scenario(path)
        a = World(config).run()
        b = World(restored).run()
        assert [r.new_name for r in a.log.renames] == [
            r.new_name for r in b.log.renames
        ]

    def test_unknown_idiom_type_rejected(self, tmp_path):
        import json
        from repro.ecosystem.config import default_scenario
        from repro.ecosystem.scenario_io import load_scenario, scenario_to_dict
        data = scenario_to_dict(default_scenario())
        data["registrars"][0]["idiom_schedule"][0][1]["type"] = "EvilIdiom"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_scenario(path)
