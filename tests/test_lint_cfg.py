"""Engine 4 substrate: per-function CFGs with exception/finally edges."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.cfg import EXCEPTION, NORMAL, CFG, build_cfg, function_cfgs


def _cfg(source: str, name: str | None = None) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    graphs = function_cfgs(tree)
    if name is None:
        assert len(graphs) == 1
        return graphs[0]
    return next(graph for graph in graphs if graph.name == name)


def _one(cfg: CFG, label: str) -> int:
    nodes = [node.index for node in cfg.nodes if node.label == label]
    assert len(nodes) == 1, f"expected one {label!r} node, got {nodes}"
    return nodes[0]


def _reachable(cfg: CFG, start: int) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        for target, _ in cfg.nodes[stack.pop()].succs:
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return seen


class TestStraightLine:
    def test_every_statement_gets_an_exception_edge(self) -> None:
        cfg = _cfg("""
            def f(x):
                y = x + 1
                return y
        """)
        stmts = [node for node in cfg.nodes if node.kind == "stmt"]
        assert len(stmts) == 2
        for node in stmts:
            assert (cfg.raise_exit, EXCEPTION) in node.succs
        assert (cfg.exit, NORMAL) in stmts[-1].succs

    def test_qualnames_are_dotted(self) -> None:
        source = """
            class Store:
                def save(self):
                    pass

            def top():
                def inner():
                    pass
        """
        names = {graph.name for graph in function_cfgs(
            ast.parse(textwrap.dedent(source))
        )}
        assert names == {"Store.save", "top", "top.inner"}


class TestTryExceptElseFinally:
    SOURCE = """
        def f(work, cleanup):
            try:
                work()
            except ValueError:
                recover()
            else:
                extra()
            finally:
                cleanup()
    """

    def test_body_exception_routes_to_dispatch(self) -> None:
        cfg = _cfg(self.SOURCE)
        body_nodes = {
            node.line: node for node in cfg.nodes if node.kind == "stmt"
        }
        work = body_nodes[4]
        dispatch = _one(cfg, "except-dispatch")
        assert (dispatch, EXCEPTION) in work.succs

    def test_dispatch_reaches_handler_and_finally_exception_copy(self) -> None:
        cfg = _cfg(self.SOURCE)
        dispatch = cfg.nodes[_one(cfg, "except-dispatch")]
        handler = _one(cfg, "except:")
        f_exc = _one(cfg, "finally-exception")
        assert (handler, NORMAL) in dispatch.succs
        # An exception matching no handler still runs finally.
        assert (f_exc, EXCEPTION) in dispatch.succs

    def test_else_runs_only_after_body_completes(self) -> None:
        cfg = _cfg(self.SOURCE)
        by_line = {node.line: node for node in cfg.nodes if node.kind == "stmt"}
        work, extra = by_line[4], by_line[8]
        assert (extra.index, NORMAL) in work.succs
        handler_out = by_line[6]  # recover()
        assert (extra.index, NORMAL) not in handler_out.succs

    def test_finally_copies_exist_per_live_continuation(self) -> None:
        cfg = _cfg(self.SOURCE)
        labels = {node.label for node in cfg.nodes if node.kind == "finally"}
        # No return/break/continue escapes this try: just the two copies.
        assert labels == {"finally-exception", "finally-normal"}

    def test_return_in_body_adds_a_return_copy(self) -> None:
        cfg = _cfg("""
            def f(work, cleanup):
                try:
                    return work()
                finally:
                    cleanup()
        """)
        labels = {node.label for node in cfg.nodes if node.kind == "finally"}
        assert labels == {"finally-exception", "finally-return",
                          "finally-normal"}


class TestWithUnwinding:
    def test_body_exception_routes_through_with_exit(self) -> None:
        cfg = _cfg("""
            def f(cm, work):
                with cm:
                    work()
        """)
        by_line = {node.line: node for node in cfg.nodes if node.kind == "stmt"}
        work = by_line[4]
        (target, kind), = [
            succ for succ in work.succs if succ[1] == EXCEPTION
        ]
        assert cfg.nodes[target].kind == "with-exit"
        # ... and that exit copy re-raises outward.
        assert (cfg.raise_exit, EXCEPTION) in cfg.nodes[target].succs

    def test_return_inside_with_routes_through_exit_copy(self) -> None:
        cfg = _cfg("""
            def f(cm, work):
                with cm:
                    return work()
        """)
        by_line = {node.line: node for node in cfg.nodes if node.kind == "stmt"}
        ret = by_line[4]
        normal = [
            target for target, kind in ret.succs if kind == NORMAL
        ]
        assert len(normal) == 1
        exit_copy = cfg.nodes[normal[0]]
        assert exit_copy.kind == "with-exit"
        assert (cfg.exit, NORMAL) in exit_copy.succs

    def test_multi_item_with_unwinds_inner_first(self) -> None:
        cfg = _cfg("""
            def f(a, b, work):
                with a, b:
                    work()
        """)
        by_line = {node.line: node for node in cfg.nodes if node.kind == "stmt"}
        work = by_line[4]
        (inner_exit, _), = [s for s in work.succs if s[1] == EXCEPTION]
        (outer_exit, _), = [
            s for s in cfg.nodes[inner_exit].succs if s[1] == EXCEPTION
        ]
        assert cfg.nodes[inner_exit].kind == "with-exit"
        assert cfg.nodes[outer_exit].kind == "with-exit"
        assert (cfg.raise_exit, EXCEPTION) in cfg.nodes[outer_exit].succs


class TestReturnInsideFinally:
    def test_return_in_finally_swallows_the_exception(self) -> None:
        cfg = _cfg("""
            def f(work, fallback):
                try:
                    work()
                finally:
                    return fallback
        """)
        reachable = _reachable(cfg, cfg.entry)
        # The exception continuation's resume point is never reached:
        # every in-flight exception is swallowed by the return.
        tail = next(
            node.index
            for node in cfg.nodes
            if node.label == "finally-exception-end"
        )
        assert tail not in reachable
        # The exception path from the body still reaches normal exit.
        by_line = {node.line: node for node in cfg.nodes if node.kind == "stmt"}
        work = by_line[4]
        (f_exc, _), = [s for s in work.succs if s[1] == EXCEPTION]
        assert cfg.exit in _reachable(cfg, f_exc)


class TestDump:
    def test_to_dict_is_json_shaped_and_sorted(self) -> None:
        cfg = _cfg("""
            def f(x):
                if x:
                    return 1
                return 2
        """)
        dump = cfg.to_dict()
        assert dump["function"] == "f"
        assert dump["edges"] == sorted(dump["edges"])
        assert {node["kind"] for node in dump["nodes"]} >= {
            "entry", "exit", "raise-exit", "stmt"
        }
        assert build_cfg is not None
