"""RunSupervisor: retries, backoff, kill propagation, real process crashes."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.faults.process import (
    KILL_EXIT_CODE,
    ChaosKill,
    ChaosMonkey,
    ProcessChaosConfig,
)
from repro.runner.supervisor import (
    RunFailed,
    RunSupervisor,
    SupervisorPolicy,
)

FAST = SupervisorPolicy(
    max_retries=2, backoff_base_s=0.001, backoff_max_s=0.002,
    heartbeat_timeout_s=5.0, poll_interval_s=0.01,
)


class TestPolicy:
    def test_backoff_grows_and_caps(self):
        policy = SupervisorPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3
        )
        flat = [policy.backoff_for(attempt, 0.5) for attempt in (1, 2, 3, 4)]
        assert flat == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_scales_half_to_one_and_a_half(self):
        policy = SupervisorPolicy(backoff_base_s=0.1)
        assert policy.backoff_for(1, 0.0) == pytest.approx(0.05)
        assert policy.backoff_for(1, 0.999) == pytest.approx(0.15, abs=0.001)


class TestInline:
    def test_runs_every_shard_in_order(self):
        seen: list[int] = []
        outcomes = RunSupervisor(FAST).run_inline([2, 0, 1], seen.append)
        assert seen == [2, 0, 1]
        assert all(o.attempts == 1 for o in outcomes.values())

    def test_retries_exceptions_until_success(self):
        failures = {0: 2}

        def execute(index: int) -> None:
            if failures.get(index, 0) > 0:
                failures[index] -= 1
                raise RuntimeError("transient")

        outcomes = RunSupervisor(FAST).run_inline([0, 1], execute)
        assert outcomes[0].attempts == 3
        assert outcomes[0].retried
        assert outcomes[1].attempts == 1

    def test_exhausted_budget_raises_run_failed(self):
        def execute(index: int) -> None:
            raise RuntimeError("permanent")

        with pytest.raises(RunFailed):
            RunSupervisor(FAST).run_inline([0], execute)

    def test_chaos_kill_is_not_absorbed(self):
        """A simulated SIGKILL must never be treated as a retryable error."""

        def execute(index: int) -> None:
            raise ChaosKill("worker", "shard-0:candidates")

        with pytest.raises(ChaosKill):
            RunSupervisor(FAST).run_inline([0], execute)

    def test_on_complete_called_per_success(self):
        completed: list[int] = []
        RunSupervisor(FAST).run_inline(
            [0, 1], lambda index: None, on_complete=completed.append
        )
        assert completed == [0, 1]


def _worker_ok(index: int, attempt: int, heartbeats) -> None:
    heartbeats.put((index, "stage"))


def _worker_crash_once(index: int, attempt: int, heartbeats) -> None:
    import os

    heartbeats.put((index, "start"))
    if attempt == 1:
        os._exit(KILL_EXIT_CODE)
    heartbeats.put((index, "done"))


def _worker_always_crash(index: int, attempt: int, heartbeats) -> None:
    import os

    os._exit(KILL_EXIT_CODE)


class TestProcesses:
    def _spawn(self, target):
        ctx = multiprocessing.get_context()

        def spawn(index: int, attempt: int, heartbeats):
            process = ctx.Process(target=target, args=(index, attempt, heartbeats))
            process.start()
            return process

        return spawn

    def test_requires_positive_worker_count(self):
        with pytest.raises(ValueError):
            RunSupervisor(FAST).run_processes([0], lambda *a: None)

    def test_clean_workers_complete(self):
        completed: list[int] = []
        policy = SupervisorPolicy(
            workers=2, max_retries=1, backoff_base_s=0.001,
            heartbeat_timeout_s=10.0, poll_interval_s=0.01,
        )
        outcomes = RunSupervisor(policy).run_processes(
            [0, 1, 2],
            self._spawn(_worker_ok),
            on_complete=completed.append,
        )
        assert sorted(completed) == [0, 1, 2]
        assert all(o.attempts == 1 for o in outcomes.values())

    def test_crashed_worker_retried_and_recovers(self):
        """A real exit-137 crash is detected and the shard re-attempted."""
        policy = SupervisorPolicy(
            workers=2, max_retries=2, backoff_base_s=0.001,
            heartbeat_timeout_s=10.0, poll_interval_s=0.01,
        )
        completed: list[int] = []
        outcomes = RunSupervisor(policy).run_processes(
            [0, 1],
            self._spawn(_worker_crash_once),
            on_complete=completed.append,
        )
        assert sorted(completed) == [0, 1]
        assert all(o.attempts == 2 for o in outcomes.values())
        assert all(
            o.crashes == [f"exit code {KILL_EXIT_CODE}"]
            for o in outcomes.values()
        )

    def test_persistent_crash_exhausts_budget(self):
        policy = SupervisorPolicy(
            workers=1, max_retries=1, backoff_base_s=0.001,
            heartbeat_timeout_s=10.0, poll_interval_s=0.01,
        )
        with pytest.raises(RunFailed):
            RunSupervisor(policy).run_processes(
                [0], self._spawn(_worker_always_crash)
            )


class TestChaosMonkey:
    def test_disabled_config_never_kills(self):
        monkey = ChaosMonkey(ProcessChaosConfig())
        for _ in range(100):
            monkey.worker_boundary("x")
            monkey.supervisor_boundary("x")
            assert monkey.torn_write(b"0123456789") is None
        assert monkey.kills == 0

    def test_rate_one_kills_at_first_boundary(self):
        monkey = ChaosMonkey(ProcessChaosConfig(kill_worker_rate=1.0))
        with pytest.raises(ChaosKill):
            monkey.worker_boundary("shard-0:candidates")
        assert monkey.kill_sites == [("worker", "shard-0:candidates")]

    def test_budget_caps_total_kills(self):
        monkey = ChaosMonkey(
            ProcessChaosConfig(kill_worker_rate=1.0, max_kills=2)
        )
        killed = 0
        for _ in range(10):
            try:
                monkey.worker_boundary("boundary")
            except ChaosKill:
                killed += 1
        assert killed == 2
        assert monkey.kills == 2

    def test_torn_write_cut_is_strictly_inside(self):
        monkey = ChaosMonkey(ProcessChaosConfig(torn_write_rate=1.0))
        data = b"0123456789" * 5
        cut = monkey.torn_write(data)
        assert cut is not None
        assert 0 < cut < len(data)

    def test_streams_are_independent(self):
        """Worker kills draw from their own stream: torn decisions repeat."""
        config = ProcessChaosConfig(
            seed=5, kill_worker_rate=0.5, torn_write_rate=0.5
        )
        solo = ChaosMonkey(
            ProcessChaosConfig(seed=5, torn_write_rate=0.5)
        )
        mixed = ChaosMonkey(config)
        torn_solo = []
        torn_mixed = []
        for _ in range(50):
            torn_solo.append(solo.torn_write(b"0123456789"))
            try:
                mixed.worker_boundary("x")
            except ChaosKill:
                pass
            torn_mixed.append(mixed.torn_write(b"0123456789"))
        assert torn_solo == torn_mixed

    def test_deterministic_for_a_seed(self):
        def sites(seed: int) -> list[tuple[str, str]]:
            monkey = ChaosMonkey(
                ProcessChaosConfig(
                    seed=seed, kill_worker_rate=0.3, kill_supervisor_rate=0.3,
                    max_kills=5,
                )
            )
            for step in range(40):
                try:
                    monkey.worker_boundary(f"w{step}")
                    monkey.supervisor_boundary(f"s{step}")
                except ChaosKill:
                    pass
            return monkey.kill_sites

        assert sites(9) == sites(9)
        assert sites(9) != sites(10)
