"""Property test: interval invariants hold under arbitrary fault schedules.

Whatever a fault schedule does to the snapshot stream — dropped days,
duplicates, reordering, truncation, record corruption — the interval
database that lenient ingestion builds must still satisfy its core
invariants:

* every interval is half-open with ``end`` strictly after ``start``
  (or ``None`` while open);
* intervals for the same (domain, nameserver) pair never overlap;
* the domain-keyed and nameserver-keyed indexes hold exactly the same
  records.

Both delegation-store backends must uphold them, so each property runs
against memory and SQLite.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, SnapshotFaultInjector
from repro.store.sqlite import SqliteDelegationStore
from repro.zonedb.database import IngestPolicy, ZoneDatabase
from repro.zonedb.snapshot import ZoneSnapshot

BACKENDS = ("memory", "sqlite")


def _store_for(backend: str) -> SqliteDelegationStore | None:
    return SqliteDelegationStore(":memory:") if backend == "sqlite" else None

_domains = st.sampled_from([f"domain{i}.biz" for i in range(5)])
_nameservers = st.sampled_from(
    [f"ns{i}.host{j}.com" for i in range(2) for j in range(2)]
)

_day_delegations = st.dictionaries(
    _domains, st.frozensets(_nameservers, min_size=1, max_size=3), max_size=5
)

_schedules = st.lists(_day_delegations, min_size=1, max_size=8)

_fault_configs = st.builds(
    FaultConfig,
    seed=st.integers(min_value=0, max_value=2**16),
    snapshot_drop_rate=st.floats(min_value=0.0, max_value=0.5),
    snapshot_duplicate_rate=st.floats(min_value=0.0, max_value=0.5),
    snapshot_reorder_rate=st.floats(min_value=0.0, max_value=0.5),
    snapshot_truncate_rate=st.floats(min_value=0.0, max_value=0.5),
    record_corrupt_rate=st.floats(min_value=0.0, max_value=0.5),
)

_gap_windows = st.sampled_from([0, 7, 30, 10_000])


def _check_invariants(db: ZoneDatabase) -> None:
    pair_records: dict[tuple[str, str], list] = {}
    domain_side = []
    for domain in db.all_domains():
        for record in db.domain_records(domain):
            assert record.domain == domain
            assert record.end is None or record.end > record.start
            pair_records.setdefault((record.domain, record.ns), []).append(record)
            domain_side.append(record)

    for records in pair_records.values():
        records.sort(key=lambda r: r.start)
        for earlier, later in zip(records, records[1:]):
            assert earlier.end is not None, "open interval must be the last one"
            assert earlier.end <= later.start

    ns_side = [
        record
        for ns in db.all_nameservers()
        for record in db.ns_records(ns)
    ]
    # Value comparison, not identity: the SQLite backend materializes
    # fresh DelegationRecord objects per query.
    assert sorted(r.as_tuple() for r in domain_side) == sorted(
        r.as_tuple() for r in ns_side
    )


@settings(max_examples=30, deadline=None)
@given(schedule=_schedules, faults=_fault_configs, gap=_gap_windows)
def test_interval_invariants_survive_any_fault_schedule(schedule, faults, gap):
    snapshots = [
        ZoneSnapshot(day=index * 7, tld="biz", delegations=delegations)
        for index, delegations in enumerate(schedule)
        if delegations
    ]
    degraded = SnapshotFaultInjector(faults).degrade(snapshots)

    for backend in BACKENDS:
        db = ZoneDatabase(
            ingest_policy=IngestPolicy(gap_bridge_days=gap),
            store=_store_for(backend),
        )
        for snapshot in degraded:
            report = db.ingest_snapshot(snapshot)
            assert report.ingested or report.reason
        db.finalize_pending()
        _check_invariants(db)


@settings(max_examples=20, deadline=None)
@given(schedule=_schedules, gap=_gap_windows)
def test_pristine_schedules_keep_invariants_under_gap_bridging(schedule, gap):
    for backend in BACKENDS:
        db = ZoneDatabase(
            ingest_policy=IngestPolicy(gap_bridge_days=gap),
            store=_store_for(backend),
        )
        for index, delegations in enumerate(schedule):
            db.ingest_snapshot(
                ZoneSnapshot(day=index * 7, tld="biz", delegations=delegations)
            )
        db.finalize_pending()
        _check_invariants(db)
