"""Property-based end-to-end detection: random mini-worlds, exact recovery.

Hypothesis generates small hoster/client scenarios, plays them through
the *real* EPP machinery with a randomly chosen idiom, mirrors the
registry activity into a zone database, runs the full detection
pipeline, and asserts the rename is recovered and correctly attributed.
This is the strongest statement the reproduction makes: the methodology
works on arbitrary instances of the mechanism, not just the tuned world.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.detection.pipeline import DetectionPipeline
from repro.ecosystem.mirror import ZoneMirror
from repro.epp.registry import default_roster
from repro.registrar.idioms import (
    DeletedDropIdiom,
    DropThisHostIdiom,
    Enom123BizIdiom,
    PleaseDropThisHostIdiom,
    SinkDomainIdiom,
    SldRandomSuffixIdiom,
)
from repro.registrar.policy import DeletionMachinery, ensure_sink_domains
from repro.whois.archive import WhoisArchive
from repro.zonedb.database import ZoneDatabase

IDIOM_FACTORIES = (
    ("pattern", PleaseDropThisHostIdiom),
    ("pattern", DropThisHostIdiom),
    ("pattern", DeletedDropIdiom),
    ("match", Enom123BizIdiom),
    ("match", lambda: SldRandomSuffixIdiom(rand_length=6)),
    ("sink", lambda: SinkDomainIdiom("dummyns.com")),
)

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=4, max_size=10)


@settings(max_examples=30, deadline=None)
@given(
    hoster_sld=label,
    client_slds=st.sets(label, min_size=1, max_size=4),
    idiom_index=st.integers(min_value=0, max_value=len(IDIOM_FACTORIES) - 1),
    ns_count=st.integers(min_value=1, max_value=2),
    death_day=st.integers(min_value=30, max_value=2000),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_rename_scenarios_are_recovered(
    hoster_sld, client_slds, idiom_index, ns_count, death_day, seed
):
    client_slds = client_slds - {hoster_sld}
    if not client_slds:
        return
    kind, factory = IDIOM_FACTORIES[idiom_index]
    idiom = factory()

    roster = default_roster()
    zonedb = ZoneDatabase()
    for registry in roster.registries:
        registry.repository.set_audit_hook(
            ZoneMirror(registry.repository, zonedb)
        )
    whois = WhoisArchive()
    verisign = roster.registry_for("x.com")
    verisign.accredit("hosterreg")
    verisign.accredit("clientreg")

    hoster_domain = f"{hoster_sld}.com"
    session = verisign.session("hosterreg")
    assert session.domain_create(hoster_domain, day=0).ok
    whois.record_registration(hoster_domain, "hosterreg", day=0, period_years=9)
    hosts = [f"ns{i + 1}.{hoster_domain}" for i in range(ns_count)]
    for index, host in enumerate(hosts):
        assert session.host_create(
            host, day=0, addresses=[f"192.0.2.{index + 1}"]
        ).ok
    assert session.domain_update_ns(hoster_domain, day=0, add=hosts).ok

    client_session = verisign.session("clientreg")
    for index, sld in enumerate(sorted(client_slds)):
        assert client_session.domain_create(
            f"{sld}.com", day=1 + (index % 5), nameservers=[hosts[index % ns_count]]
        ).ok

    if kind == "sink":
        ensure_sink_domains("hosterreg", idiom, roster.registries, day=2)
        whois.record_registration(
            "dummyns.com", "hosterreg", day=2, period_years=30
        )

    machinery = DeletionMachinery(random.Random(seed))
    outcome = machinery.delete_domain(session, hoster_domain, idiom, day=death_day)
    assert outcome.deleted, outcome.errors
    whois.record_deletion(hoster_domain, day=death_day)
    if not outcome.renames:
        return  # all hosts were unlinked (clients shared one NS)

    zonedb.advance(death_day + 10)
    result = DetectionPipeline(zonedb, whois, mine_patterns=False).run()
    detected = result.by_name()
    for rename in outcome.renames:
        assert rename.new_name in detected, (
            f"{idiom.idiom_id} rename {rename.new_name} not detected"
        )
        entry = detected[rename.new_name]
        assert entry.created_day == death_day
        assert entry.hijackable == idiom.hijackable
        if kind == "match":
            assert entry.registrar == "hosterreg"
            assert entry.original_domain == hoster_domain
