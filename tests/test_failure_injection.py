"""Failure injection: broken idioms, exhausted retries, hostile inputs.

Production deletion machinery must degrade cleanly when an idiom
misbehaves: errors become recorded outcomes, never crashes, and the
repository is left in a consistent state (verified by re-running the
same invariants the stateful suite uses).
"""

import random

import pytest

from repro.epp.errors import ResultCode
from repro.epp.registry import Registry, TldPolicy
from repro.registrar.idioms import RenamingIdiom
from repro.registrar.policy import DeletionMachinery


class StuckIdiom(RenamingIdiom):
    """Always produces the same name — every retry collides."""

    idiom_id = "STUCK"
    hijackable = True

    def rename(self, host, rng, *, attempt=0, psl=None):
        return "always-the-same.biz"


class MalformedIdiom(RenamingIdiom):
    """Produces a syntactically invalid name (label too long)."""

    idiom_id = "MALFORMED"
    hijackable = True

    def rename(self, host, rng, *, attempt=0, psl=None):
        return ("x" * 80) + ".biz"


class InternalGhostIdiom(RenamingIdiom):
    """Targets an internal namespace whose superordinate doesn't exist."""

    idiom_id = "GHOST"
    hijackable = True

    def rename(self, host, rng, *, attempt=0, psl=None):
        return f"ns{attempt}.never-registered.com"


@pytest.fixture()
def registry():
    reg = Registry("sim-verisign", [TldPolicy("com")])
    reg.accredit("regA")
    reg.accredit("regB")
    return reg


@pytest.fixture()
def hoster_session(registry):
    a = registry.session("regA")
    b = registry.session("regB")
    a.domain_create("foo.com", day=0)
    a.host_create("ns1.foo.com", day=0, addresses=["192.0.2.1"])
    a.domain_update_ns("foo.com", day=0, add=["ns1.foo.com"])
    b.domain_create("victim.com", day=1, nameservers=["ns1.foo.com"])
    return a


def assert_repository_consistent(repo):
    """The link/subordinate invariants must survive any failure."""
    referencing: dict[str, set[str]] = {}
    for domain in repo.all_domains():
        for ns in domain.nameservers:
            referencing.setdefault(ns, set()).add(domain.name)
    for host in repo.all_hosts():
        assert host.linked_domains == referencing.get(host.name, set())


class TestStuckIdiom:
    def test_first_rename_succeeds_then_collides(self, registry, hoster_session):
        machinery = DeletionMachinery(random.Random(1))
        outcome = machinery.delete_domain(
            hoster_session, "foo.com", StuckIdiom(), day=5
        )
        # First deletion renames to the fixed name and succeeds.
        assert outcome.deleted
        # A second hoster with the same idiom must exhaust retries.
        a = hoster_session
        a.domain_create("bar2.com", day=6)
        a.host_create("ns1.bar2.com", day=6, addresses=["192.0.2.2"])
        registry.session("regB").domain_create(
            "victim2.com", day=6, nameservers=["ns1.bar2.com"]
        )
        outcome2 = machinery.delete_domain(a, "bar2.com", StuckIdiom(), day=7)
        assert not outcome2.deleted
        assert any("exhausted" in e for e in outcome2.errors)
        assert_repository_consistent(registry.repository)

    def test_victim_unchanged_after_exhaustion(self, registry, hoster_session):
        machinery = DeletionMachinery(random.Random(1))
        machinery.delete_domain(hoster_session, "foo.com", StuckIdiom(), day=5)
        a = hoster_session
        a.domain_create("bar2.com", day=6)
        a.host_create("ns1.bar2.com", day=6, addresses=["192.0.2.2"])
        registry.session("regB").domain_create(
            "victim2.com", day=6, nameservers=["ns1.bar2.com"]
        )
        machinery.delete_domain(a, "bar2.com", StuckIdiom(), day=7)
        assert registry.repository.domain("victim2.com").nameservers == [
            "ns1.bar2.com"
        ]


class TestMalformedIdiom:
    def test_no_crash_and_error_recorded(self, registry, hoster_session):
        machinery = DeletionMachinery(random.Random(1))
        outcome = machinery.delete_domain(
            hoster_session, "foo.com", MalformedIdiom(), day=5
        )
        assert not outcome.deleted
        assert outcome.errors
        assert_repository_consistent(registry.repository)

    def test_malformed_surfaces_as_policy_error(self, registry, hoster_session):
        result = hoster_session.host_rename(
            "ns1.foo.com", ("y" * 90) + ".biz", day=5
        )
        assert not result.ok
        assert result.code is ResultCode.PARAMETER_VALUE_POLICY_ERROR


class TestInternalGhostIdiom:
    def test_nonexistent_superordinate_fails_cleanly(self, registry, hoster_session):
        machinery = DeletionMachinery(random.Random(1))
        outcome = machinery.delete_domain(
            hoster_session, "foo.com", InternalGhostIdiom(), day=5
        )
        assert not outcome.deleted
        assert any("2303" in e or "does not exist" in e.lower()
                   for e in outcome.errors)
        assert_repository_consistent(registry.repository)


class TestHostileInputs:
    def test_create_domain_with_garbage_name(self, registry):
        session = registry.session("regA")
        result = session.domain_create("..", day=0)
        assert not result.ok
        assert result.code is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_update_with_garbage_ns(self, registry):
        session = registry.session("regA")
        session.domain_create("ok.com", day=0)
        result = session.domain_update_ns("ok.com", day=1, add=["bad..name"])
        assert not result.ok

    def test_transcript_survives_failures(self, registry):
        session = registry.session("regA")
        session.domain_create("..", day=0)
        session.domain_create("ok.com", day=0)
        assert len(session.transcript) == 2
        assert len(session.failures()) == 1
