"""Smoke tests: the example scripts must run and produce their story.

Only the fast examples run under pytest (the heavier ones exercise the
exact same APIs the integration tests already cover).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_renaming_walkthrough(self):
        out = run_example("renaming_walkthrough.py")
        assert "2305" in out                      # blocked deletion
        assert "host renamed" in out
        assert "qux.gov" in out                   # cross-TLD rewrite
        assert "can no longer be modified" in out  # irreversibility

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Detection pipeline funnel" in out
        assert "Ground truth parity" in out
        assert "0 false positives" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text(encoding="utf-8")
            assert text.lstrip().startswith(("#!", '"""')), script.name
            assert '"""' in text, script.name
            assert "__main__" in text, script.name
