"""Tests for scenario configuration and population planning."""

import pytest

from repro import simtime
from repro.dnscore.names import Name
from repro.ecosystem.config import (
    default_scenario,
    paper_hijackers,
    paper_registrars,
    tiny_scenario,
)
from repro.ecosystem.population import NameForge, Plan, PopulationPlanner
import random


@pytest.fixture(scope="module")
def plan() -> Plan:
    return PopulationPlanner(tiny_scenario()).build()


class TestConfig:
    def test_default_timeline_bounds(self):
        config = default_scenario()
        assert config.start_day == 0
        assert config.end_day == simtime.to_day(simtime.EXTENDED_END)
        assert config.study_end_day < config.end_day

    def test_scaled_counts(self):
        config = default_scenario().scaled(0.1)
        assert config.hoster_count == round(default_scenario().hoster_count * 0.1)
        assert config.namecheap.client_count == round(1600 * 0.1)

    def test_scaled_preserves_behavioural_params(self):
        config = default_scenario().scaled(0.1)
        assert config.partial_exposure_fraction == \
            default_scenario().partial_exposure_fraction

    def test_registrar_roster_matches_paper(self):
        idents = {spec.ident for spec in paper_registrars()}
        for expected in (
            "godaddy", "enom", "internetbs", "netsol", "tldrs", "gmo",
            "xinnet", "srsplus", "domainpeople", "fabulous", "registercom",
            "markmonitor", "namecheap",
        ):
            assert expected in idents

    def test_godaddy_idiom_history(self):
        godaddy = next(s for s in paper_registrars() if s.ident == "godaddy")
        idiom_ids = [idiom.idiom_id for _date, idiom in godaddy.idiom_schedule]
        assert idiom_ids == [
            "PLEASEDROPTHISHOST", "DROPTHISHOST", "EMPTY.AS112.ARPA"
        ]

    def test_hijacker_roster_matches_table4(self):
        ns_domains = {spec.ns_domain for spec in paper_hijackers()}
        for expected in (
            "mpower.nl", "protectdelegation.com", "yandex.net",
            "phonesear.ch", "dnspanel.com",
        ):
            assert expected in ns_domains

    def test_internetbs_abandons_dummyns(self):
        ibs = next(s for s in paper_registrars() if s.ident == "internetbs")
        assert ibs.sink_abandonments[0][1] == "dummyns.com"


class TestNameForge:
    def test_unique_labels(self):
        forge = NameForge(random.Random(1))
        labels = {forge.label() for _ in range(500)}
        assert len(labels) == 500

    def test_deterministic(self):
        a = NameForge(random.Random(9)).label()
        b = NameForge(random.Random(9)).label()
        assert a == b


class TestPlanStructure:
    def test_entity_counts_scale(self, plan):
        config = tiny_scenario()
        assert len(plan.hosters) == config.hoster_count
        assert len(plan.typo_domains) == config.typo_domain_count
        assert len(plan.test_ns) == config.test_ns_count

    def test_hoster_death_after_birth(self, plan):
        for hoster in plan.hosters:
            assert hoster.birth_day < hoster.death_day

    def test_hoster_tlds_avoid_neustar_and_restricted(self, plan):
        for hoster in plan.hosters:
            assert Name(hoster.domain).tld in ("com", "net", "org", "info")

    def test_clients_born_before_hoster_death(self, plan):
        for hoster in plan.hosters:
            for client in hoster.clients:
                assert client.birth_day < hoster.death_day

    def test_clients_delegate_to_hoster(self, plan):
        for hoster in plan.hosters:
            for client in hoster.clients:
                assert any(ns in hoster.ns_hosts for ns in client.ns_refs)

    def test_partial_clients_have_alternate(self, plan):
        partials = [
            c for h in plan.hosters for c in h.clients if c.partial
        ]
        for client in partials:
            assert len(client.ns_refs) > 1
            assert any(ns not in client.ns_refs[0] for ns in client.ns_refs)

    def test_fix_xor_expiry_consistency(self, plan):
        for hoster in plan.hosters:
            for client in hoster.clients:
                if client.fix_day is not None:
                    assert client.fix_day > hoster.death_day
                if client.expiry_day is not None:
                    assert client.expiry_day > hoster.death_day

    def test_restricted_clients_use_registry(self, plan):
        for hoster in plan.hosters:
            for client in hoster.clients:
                if Name(client.domain).tld in ("edu", "gov"):
                    assert client.registrar == "sim-verisign"

    def test_cross_repo_clients_in_other_repository(self, plan):
        from repro.ecosystem.population import _TLD_REPO
        for hoster in plan.hosters:
            hoster_repo = _TLD_REPO[Name(hoster.domain).tld]
            for client in hoster.clients:
                client_repo = _TLD_REPO[Name(client.domain).tld]
                if client.cross_repo:
                    assert client_repo != hoster_repo
                else:
                    assert client_repo == hoster_repo

    def test_brand_clients_assigned(self, plan):
        brands = [c for h in plan.hosters for c in h.clients if c.brand]
        assert len(brands) <= tiny_scenario().brand_client_count
        for client in brands:
            assert client.registrar == "markmonitor"
            assert client.fix_day is None and client.expiry_day is None

    def test_death_rate_declines(self):
        """First-half deaths outnumber second-half (Figure 3's driver)."""
        config = default_scenario()
        planner = PopulationPlanner(config)
        deaths = [planner._death_day() for _ in range(4000)]
        study = [d for d in deaths if d < config.study_end_day]
        midpoint = config.study_end_day // 2
        first = sum(1 for d in study if d < midpoint)
        second = len(study) - first
        assert first > second * 1.3

    def test_namecheap_plan_shape(self, plan):
        nc = plan.namecheap
        assert nc is not None
        assert nc.sponsor == "enom"
        never = [c for c in nc.clients if c.fix_day is None]
        assert len(never) == tiny_scenario().namecheap.never_fixed
        within_3 = sum(
            1 for c in nc.clients
            if c.fix_day is not None and c.fix_day <= nc.day + 3
        )
        assert within_3 / len(nc.clients) > 0.85

    def test_test_ns_match_emt_pattern(self, plan):
        for test in plan.test_ns:
            assert test.domain.startswith("emt-d-")
            for ns in test.ns_names:
                assert ns.startswith("emt-ns")
                assert "-u.com" in ns

    def test_typo_ns_not_provider_names(self, plan):
        from repro.ecosystem.population import SAFE_PROVIDERS
        providers = {p for p, _o in SAFE_PROVIDERS}
        for typo in plan.typo_domains:
            for ns in typo.typo_ns:
                registered = ".".join(Name(ns).labels[-2:])
                assert registered not in providers

    def test_deterministic_given_seed(self):
        plan_a = PopulationPlanner(tiny_scenario()).build()
        plan_b = PopulationPlanner(tiny_scenario()).build()
        assert [h.domain for h in plan_a.hosters] == [h.domain for h in plan_b.hosters]
        assert plan_a.client_count() == plan_b.client_count()

    def test_different_seeds_differ(self):
        plan_a = PopulationPlanner(tiny_scenario(seed=1)).build()
        plan_b = PopulationPlanner(tiny_scenario(seed=2)).build()
        assert [h.domain for h in plan_a.hosters] != [h.domain for h in plan_b.hosters]
