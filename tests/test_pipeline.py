"""End-to-end detection pipeline tests, validated against ground truth.

The pipeline sees only the observable data (zone database + WHOIS); the
simulator's event log says what actually happened. On the shared worlds
the two must agree exactly.
"""

import collections

import pytest

from repro.detection.idioms import classify_match, known_classifiers
from repro.detection.pipeline import DetectionPipeline


@pytest.fixture(scope="module")
def outcome(tiny_bundle):
    return tiny_bundle.world, tiny_bundle.pipeline


class TestGroundTruthParity:
    def test_every_rename_detected(self, outcome):
        world, result = outcome
        truth = {r.new_name for r in world.log.renames}
        detected = {s.name for s in result.sacrificial}
        assert truth - detected == set()

    def test_no_false_positives(self, outcome):
        world, result = outcome
        truth = {r.new_name for r in world.log.renames}
        detected = {s.name for s in result.sacrificial}
        assert detected - truth == set()

    # Detection-side idiom ids use the paper's table labels, which differ
    # cosmetically from the simulator-side idiom ids for two families.
    LABEL_ALIASES = {
        "XXXXX.BIZ": "XXXXX.{BIZ, COM}",
        "LAMEDELEGATIONSERVERS.COM": "LAMEDELEGATIONSERVERS.{COM, NET}",
    }

    def test_idiom_attribution_matches(self, outcome):
        world, result = outcome
        truth = world.log.renames_by_new_name()
        for entry in result.sacrificial:
            truth_id = truth[entry.name].idiom_id
            expected = self.LABEL_ALIASES.get(truth_id, truth_id)
            assert entry.idiom_id == expected

    def test_registrar_attribution_matches(self, outcome):
        world, result = outcome
        truth = world.log.renames_by_new_name()
        for entry in result.sacrificial:
            assert entry.registrar == truth[entry.name].registrar, entry.name

    def test_hijackable_classification_matches(self, outcome):
        world, result = outcome
        truth = world.log.renames_by_new_name()
        for entry in result.sacrificial:
            if not entry.collision:
                assert entry.hijackable == truth[entry.name].hijackable

    def test_created_day_matches(self, outcome):
        world, result = outcome
        truth = world.log.renames_by_new_name()
        for entry in result.sacrificial:
            assert entry.created_day == truth[entry.name].day


class TestFunnel:
    def test_funnel_monotonic(self, outcome):
        _world, result = outcome
        funnel = result.funnel
        assert funnel.total_nameservers >= funnel.candidates
        assert funnel.candidates >= funnel.test_removed
        assert funnel.sacrificial_total == (
            funnel.pattern_classified + funnel.match_classified
        )

    def test_test_ns_removed(self, outcome):
        world, result = outcome
        assert result.funnel.test_removed == 2 * world.config.test_ns_count

    def test_single_repo_eliminations_nonzero(self, default_bundle):
        # Cross-repository typo noise is sparse at 1:1000 scale, so the
        # elimination-count assertion runs on the full-scale world.
        assert default_bundle.pipeline.funnel.single_repo_removed > 0

    def test_candidates_include_noise(self, outcome):
        """Typo nameservers inflate the candidate set beyond sacrificial."""
        world, result = outcome
        sacrificial = len([s for s in result.sacrificial])
        assert result.funnel.candidates > sacrificial

    def test_funnel_rows_render(self, outcome):
        _world, result = outcome
        rows = result.funnel.rows()
        assert len(rows) == 8
        assert all(isinstance(count, int) for _label, count in rows)


class TestPatternMining:
    def test_miner_discovers_known_idioms(self, tiny_bundle):
        result = DetectionPipeline(
            tiny_bundle.world.zonedb, tiny_bundle.world.whois,
            mine_patterns=True,
        ).run()
        mined = " ".join(p.substring for p in result.mined_patterns)
        assert "dropthishost" in mined
        assert "emt-" in mined


class TestClassifiers:
    def test_known_classifier_ids_unique(self):
        ids = [c.idiom_id for c in known_classifiers()]
        assert len(ids) == len(set(ids))

    def test_post_remediation_flags(self):
        flagged = {
            c.idiom_id for c in known_classifiers() if c.post_remediation
        }
        assert flagged == {
            "EMPTY.AS112.ARPA", "NOTAPLACETO.BE", "DELETE-REGISTRATION.COM"
        }

    def test_sink_classifiers_not_hijackable(self):
        for classifier in known_classifiers():
            if classifier.sink_domain is not None:
                assert not classifier.hijackable

    def test_pattern_examples(self):
        by_id = {c.idiom_id: c for c in known_classifiers()}
        assert by_id["PLEASEDROPTHISHOST"].matches_name(
            "pleasedropthishostxxxxx.foo.biz"
        )
        assert by_id["DROPTHISHOST"].matches_name(
            "dropthishost-ac0fe532-ea63-4d85-a013-7b0e94c4cc04.biz"
        )
        assert by_id["DELETED-DROP"].matches_name("deleted-ab1de.drop-x1y2z3.biz")
        assert by_id["DUMMYNS.COM"].matches_name("ns2-foo-com-ab12.dummyns.com")
        assert by_id["EMPTY.AS112.ARPA"].matches_name("x-1.empty.as112.arpa")

    def test_patterns_reject_lookalikes(self):
        by_id = {c.idiom_id: c for c in known_classifiers()}
        assert not by_id["DROPTHISHOST"].matches_name("dropthishost.example.com")
        assert not by_id["DUMMYNS.COM"].matches_name("dummyns.com.evil.net")
        assert not by_id["PLEASEDROPTHISHOST"].matches_name("ns1.ordinary.biz")


class TestMatchClassification:
    def test_123_suffix(self, outcome):
        _world, result = outcome
        entries = [s for s in result.sacrificial if s.idiom_id == "123.BIZ"]
        for entry in entries:
            assert entry.registered_domain.split(".", 1)[0].endswith("123")

    def test_classify_match_split(self):
        from repro.detection.matching import MatchResult

        def match_with(candidate, original):
            return MatchResult(
                candidate=candidate, first_seen=0,
                original_ns=f"ns1.{original}", original_domain=original,
                witness_domain="w.com", registrar="enom",
            )

        assert classify_match(match_with("ns1.foo123.biz", "foo.com")) == "123.BIZ"
        assert classify_match(
            match_with("ns1.fooa1b2c3.biz", "foo.com")
        ) == "XXXXX.{BIZ, COM}"
        assert classify_match(match_with("ns1.foo.biz", "foo.com")) is None

    def test_collisions_detected(self, default_bundle):
        """PLEASEDROPTHISHOST accidents land on registered domains."""
        collisions = [
            s for s in default_bundle.pipeline.sacrificial if s.collision
        ]
        assert collisions
        assert all(
            s.idiom_id == "PLEASEDROPTHISHOST" for s in collisions
        )

    def test_namecheap_renames_detected_and_attributed(self, outcome):
        world, result = outcome
        accidental = {r.new_name for r in world.log.renames if r.accidental}
        by_name = result.by_name()
        for name in sorted(accidental):
            assert name in by_name
            assert by_name[name].original_domain == "registrar-servers.com"


class TestIdiomDistribution:
    def test_major_idioms_present(self, outcome):
        _world, result = outcome
        counts = collections.Counter(s.idiom_id for s in result.sacrificial)
        for idiom in ("PLEASEDROPTHISHOST", "DROPTHISHOST", "XXXXX.{BIZ, COM}"):
            assert counts[idiom] > 0

    def test_hijackable_helper_excludes_collisions(self, default_bundle):
        result = default_bundle.pipeline
        hijackable = result.hijackable()
        assert all(h.hijackable and not h.collision for h in hijackable)
        assert len(hijackable) < len(result.sacrificial)
