"""Tests for the §7.3 EPP fixes and counterfactual scenarios."""

import pytest

from repro.epp.errors import EppError, ResultCode
from repro.epp.extensions import (
    DeletionNotificationBus,
    RESERVED_TLDS,
    ReservedTldPolicy,
    cascade_delete_domain,
    cascade_delete_everywhere,
    invalid_tld_idiom,
)
from repro.epp.repository import EppRepository


@pytest.fixture()
def repo():
    repository = EppRepository("sim-verisign", ["com", "net"])
    repository.create_domain("regA", "foo.com", day=0)
    repository.create_host("regA", "ns1.foo.com", day=0, addresses=["192.0.2.1"])
    repository.create_host("regA", "ns2.foo.com", day=0, addresses=["192.0.2.2"])
    repository.update_domain_ns(
        "regA", "foo.com", day=0, add=["ns1.foo.com", "ns2.foo.com"]
    )
    repository.create_domain("regB", "bar.com", day=1, nameservers=["ns2.foo.com"])
    repository.create_domain(
        "regB", "baz.com", day=1, nameservers=["ns2.foo.com", "ns1.foo.com"]
    )
    return repository


class TestInvalidTldIdiom:
    def test_targets_are_under_invalid(self):
        import random
        idiom = invalid_tld_idiom()
        name = idiom.rename("ns1.foo.com", random.Random(1))
        assert name.endswith(".invalid")

    def test_not_hijackable(self):
        assert not invalid_tld_idiom().hijackable

    def test_reserved_set_matches_rfc2606(self):
        assert {"invalid", "test", "example", "localhost"} <= RESERVED_TLDS


class TestReservedTldPolicy:
    def test_allows_reserved_target(self, repo):
        policy = ReservedTldPolicy(repo)
        host = policy.rename_host("regA", "ns2.foo.com", "x-1.invalid", day=5)
        assert host.name == "x-1.invalid"

    def test_rejects_biz_target(self, repo):
        policy = ReservedTldPolicy(repo)
        with pytest.raises(EppError) as err:
            policy.rename_host("regA", "ns2.foo.com", "dropthishost-1.biz", day=5)
        assert err.value.code is ResultCode.PARAMETER_VALUE_POLICY_ERROR

    def test_internal_sink_allowed_by_default(self, repo):
        repo.create_domain("regA", "sink.com", day=0)
        policy = ReservedTldPolicy(repo)
        host = policy.rename_host("regA", "ns2.foo.com", "x.sink.com", day=5)
        assert host.superordinate == "sink.com"

    def test_strict_mode_rejects_internal_sink(self, repo):
        repo.create_domain("regA", "sink.com", day=0)
        policy = ReservedTldPolicy(repo, allow_internal_sinks=False)
        with pytest.raises(EppError):
            policy.rename_host("regA", "ns2.foo.com", "x.sink.com", day=5)


class TestCascadeDelete:
    def test_domain_and_hosts_gone(self, repo):
        cascade_delete_domain(repo, "regA", "foo.com", day=10)
        assert not repo.domain_exists("foo.com")
        assert not repo.host_exists("ns1.foo.com")
        assert not repo.host_exists("ns2.foo.com")

    def test_references_removed_not_renamed(self, repo):
        """No sacrificial name is ever created."""
        trimmed = cascade_delete_domain(repo, "regA", "foo.com", day=10)
        assert set(trimmed["ns2.foo.com"]) == {"bar.com", "baz.com"}
        assert repo.domain("bar.com").nameservers == []
        assert repo.domain("baz.com").nameservers == []

    def test_availability_cost_visible_in_zone(self, repo):
        cascade_delete_domain(repo, "regA", "foo.com", day=10)
        zone = repo.zone_for("com")
        assert "bar.com" not in zone  # lost its only nameserver

    def test_sponsor_check(self, repo):
        with pytest.raises(EppError) as err:
            cascade_delete_domain(repo, "regB", "foo.com", day=10)
        assert err.value.code is ResultCode.AUTHORIZATION_ERROR

    def test_returns_empty_for_leaf_domain(self, repo):
        repo.create_domain("regA", "leaf.com", day=0)
        assert cascade_delete_domain(repo, "regA", "leaf.com", day=10) == {}


class TestNotificationBus:
    def test_cross_repository_cleanup(self, repo):
        other = EppRepository("sim-afilias", ["org"])
        other.create_host("regC", "ns2.foo.com", day=0)  # external reference
        other.create_domain("regC", "client.org", day=0, nameservers=["ns2.foo.com"])
        bus = DeletionNotificationBus()
        bus.subscribe(repo)
        bus.subscribe(other)
        cascade_delete_everywhere(
            [repo, other], "regA", "foo.com", day=10, bus=bus
        )
        assert other.repository if False else True
        assert other.domain("client.org").nameservers == []
        assert not other.host_exists("ns2.foo.com")
        assert bus.announcements() == [(10, "sim-afilias", "client.org")]

    def test_internal_homonyms_untouched(self, repo):
        other = EppRepository("sim-afilias", ["org"])
        other.create_domain("regC", "foo.org", day=0)
        other.create_host("regC", "ns2.foo.org", day=0, addresses=["192.0.2.9"])
        bus = DeletionNotificationBus()
        bus.subscribe(other)
        bus.publish(repo, "ns2.foo.org", day=10)
        # An *internal* host with a colliding name is not external cleanup.
        assert other.host_exists("ns2.foo.org")

    def test_publish_counts_removals(self, repo):
        other = EppRepository("sim-afilias", ["org"])
        other.create_host("regC", "ns2.foo.com", day=0)
        for index in range(3):
            other.create_domain(
                "regC", f"client{index}.org", day=0, nameservers=["ns2.foo.com"]
            )
        bus = DeletionNotificationBus()
        bus.subscribe(other)
        assert bus.publish(repo, "ns2.foo.com", day=10) == 3

    def test_observer_hook(self, repo):
        other = EppRepository("sim-afilias", ["org"])
        other.create_host("regC", "ns2.foo.com", day=0)
        other.create_domain("regC", "client.org", day=0, nameservers=["ns2.foo.com"])
        seen = []
        bus = DeletionNotificationBus(
            on_reference_removed=lambda d, op, dom: seen.append((d, op, dom))
        )
        bus.subscribe(other)
        bus.publish(repo, "ns2.foo.com", day=10)
        assert seen == [(10, "sim-afilias", "client.org")]

    def test_unknown_home_repository(self):
        with pytest.raises(EppError):
            cascade_delete_everywhere(
                [EppRepository("x", ["com"])], "regA", "foo.org", day=0
            )


class TestCounterfactualWorlds:
    @pytest.fixture(scope="class")
    def outcomes(self):
        from repro.analysis.study import StudyAnalysis
        from repro.analysis.tables import table3
        from repro.detection.pipeline import DetectionPipeline
        from repro.ecosystem.counterfactual import (
            all_sinks_scenario,
            greedy_hijackers_scenario,
            invalid_fix_scenario,
        )
        from repro.ecosystem.world import World

        results = {}
        for name, config in (
            ("invalid", invalid_fix_scenario(scale=0.1)),
            ("sinks", all_sinks_scenario(scale=0.1)),
            ("greedy", greedy_hijackers_scenario(scale=0.1)),
        ):
            world = World(config).run()
            pipeline = DetectionPipeline(
                world.zonedb, world.whois, mine_patterns=False
            ).run()
            study = StudyAnalysis(pipeline, world.zonedb, world.whois)
            results[name] = (world, table3(study))
        return results

    def test_invalid_fix_eliminates_hijackability(self, outcomes):
        world, summary = outcomes["invalid"]
        assert all(not r.hijackable for r in world.log.renames)
        assert summary.hijackable_ns == 0
        assert not world.log.hijacks

    def test_invalid_fix_still_renames(self, outcomes):
        """The deletion workflow still works — only the target changed."""
        world, _summary = outcomes["invalid"]
        assert world.log.renames
        assert all(r.new_name.endswith(".invalid") for r in world.log.renames)

    def test_sinks_eliminate_hijackability_while_held(self, outcomes):
        world, summary = outcomes["sinks"]
        assert summary.hijackable_ns == 0
        assert not world.log.hijacks

    def test_greedy_hijackers_collapse_selectivity(self, outcomes, tiny_bundle):
        from repro.analysis.tables import table3
        _world, greedy = outcomes["greedy"]
        baseline = table3(tiny_bundle.study)
        assert greedy.ns_fraction > 3 * baseline.ns_fraction
        greedy_amp = greedy.domain_fraction / max(greedy.ns_fraction, 1e-9)
        base_amp = baseline.domain_fraction / max(baseline.ns_fraction, 1e-9)
        assert greedy_amp < base_amp / 2
