"""Tests for registry operators, accreditation, and the default roster."""

import pytest

from repro.epp.errors import EppError
from repro.epp.registry import Registry, RegistryRoster, TldPolicy, default_roster


@pytest.fixture()
def registry():
    reg = Registry(
        "sim-verisign",
        [TldPolicy("com"), TldPolicy("edu", restricted=True)],
    )
    reg.accredit("godaddy")
    return reg


class TestAccreditation:
    def test_accredited_can_open_session(self, registry):
        assert registry.session("godaddy").registrar == "godaddy"

    def test_unaccredited_rejected(self, registry):
        with pytest.raises(EppError):
            registry.session("stranger")

    def test_operator_always_allowed(self, registry):
        assert registry.session("sim-verisign").registrar == "sim-verisign"

    def test_is_accredited(self, registry):
        assert registry.is_accredited("godaddy")
        assert not registry.is_accredited("stranger")


class TestPolicies:
    def test_restricted_flag(self, registry):
        assert registry.is_restricted("edu")
        assert not registry.is_restricted("com")

    def test_can_register_open_tld(self, registry):
        assert registry.can_register("godaddy", "com")

    def test_cannot_register_restricted_tld(self, registry):
        assert not registry.can_register("godaddy", "edu")

    def test_operator_can_register_restricted(self, registry):
        assert registry.can_register("sim-verisign", "edu")

    def test_unknown_tld(self, registry):
        assert not registry.can_register("godaddy", "org")


class TestZonePublication:
    def test_serials_increase(self, registry):
        first = registry.publish_zone("com")
        second = registry.publish_zone("com")
        assert second.serial > first.serial

    def test_publish_all_covers_tlds(self, registry):
        zones = registry.publish_all()
        assert set(zones) == {"com", "edu"}


class TestRoster:
    def test_default_topology(self):
        roster = default_roster()
        assert roster.registry_for("example.com").operator == "sim-verisign"
        assert roster.registry_for("example.gov").operator == "sim-verisign"
        assert roster.registry_for("example.org").operator == "sim-afilias"
        assert roster.registry_for("example.biz").operator == "sim-neustar"

    def test_same_repository_com_gov(self):
        """The shared-repository scoping that surprised §6.1."""
        roster = default_roster()
        assert roster.same_repository("a.com", "b.gov")
        assert roster.same_repository("a.com", "b.edu")
        assert not roster.same_repository("a.com", "b.org")
        assert not roster.same_repository("a.com", "b.biz")

    def test_unknown_tld(self):
        roster = default_roster()
        with pytest.raises(KeyError):
            roster.registry_for("example.nl")
        assert not roster.operates("example.nl")
        assert not roster.same_repository("a.com", "b.nl")

    def test_all_tlds(self):
        assert "biz" in default_roster().all_tlds()

    def test_overlapping_tlds_rejected(self):
        roster = RegistryRoster()
        roster.add(Registry("one", [TldPolicy("com")]))
        with pytest.raises(ValueError):
            roster.add(Registry("two", [TldPolicy("com")]))
